package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

func TestChaosScenariosPass(t *testing.T) {
	results, err := ChaosScenarios(ChaosParams{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Name] = true
		if !r.Passed {
			t.Errorf("%s failed:\n  %s", r.Name, strings.Join(r.Criteria, "\n  "))
		}
		if len(r.EventLog) == 0 {
			t.Errorf("%s has an empty event log", r.Name)
		}
		if r.Injected == 0 || r.Reverted != r.Injected {
			t.Errorf("%s: injected=%d reverted=%d", r.Name, r.Injected, r.Reverted)
		}
	}
	for _, want := range []string{"straggler", "brownout", "nodeloss"} {
		if !names[want] {
			t.Errorf("scenario %s missing from the suite", want)
		}
	}
}

// TestChaosScenariosDeterministic pins the replayability contract at
// suite level: the same seed produces the identical event logs and the
// identical structural verdicts across two full runs. (Counters and
// wall-clock measurements may differ; they are recorded, not pinned.)
func TestChaosScenariosDeterministic(t *testing.T) {
	run := func() []string {
		results, err := ChaosScenarios(ChaosParams{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var pinned []string
		for _, r := range results {
			pinned = append(pinned, fmt.Sprintf("%s passed=%v", r.Name, r.Passed))
			pinned = append(pinned, r.EventLog...)
			pinned = append(pinned, r.Criteria...)
		}
		return pinned
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("chaos suite not deterministic for the same seed:\n--- first\n%s\n--- second\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
}

func TestExpectedDegradedMatchesController(t *testing.T) {
	s := chaos.NewSchedule(3).
		Brownout(2, 5, 0, 0, 0.1).
		CacheCrash(1, 4, 7).
		SlowDecode(0, 9, 0, time.Millisecond, 0) // never reverts
	const total = 12
	ctl, err := chaos.NewController(s)
	if err != nil {
		t.Fatal(err)
	}
	// Wire no-op injectors so events actually activate.
	noop := chaos.Funcs(func(chaos.Event) error { return nil }, nil)
	for _, k := range []chaos.Kind{chaos.KindBrownout, chaos.KindCacheCrash, chaos.KindSlowDecode} {
		ctl.Register(k, noop)
	}
	for h := 0; h <= total; h++ {
		ctl.OnIteration(h)
	}
	if got, want := ctl.DegradedIters(), expectedDegraded(s, total); got != want {
		t.Fatalf("controller degraded iters %d != predicted %d", got, want)
	}
}

func TestExtChaosReport(t *testing.T) {
	rep := runExp(t, "ext-chaos")
	if rep.Values["scenarios_passed"] != 3 {
		t.Fatalf("scenarios_passed = %g, want 3\n%s", rep.Values["scenarios_passed"], rep.Text())
	}
	for _, k := range []string{"straggler_passed", "brownout_passed", "nodeloss_passed"} {
		if rep.Values[k] != 1 {
			t.Errorf("%s = %g, want 1", k, rep.Values[k])
		}
	}
}
