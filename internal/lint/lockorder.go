package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder is the interprocedural companion to the per-function mutex
// analyzer. Working over the module call graph, it:
//
//  1. Builds a lock-ordering graph: an edge A → B means some execution
//     path acquires lock B (possibly through a chain of calls) while
//     lock A is held. A cycle in that graph is a potential deadlock —
//     two goroutines taking the locks in opposite orders will wait on
//     each other forever.
//  2. Reports lock-held calls into functions that may block on a
//     channel (send, receive, or select without default) anywhere down
//     the call chain. The mutex analyzer catches the direct form; this
//     catches the interprocedural one, which is exactly the class of
//     the two lock-held-send deadlocks fixed early in this repo.
//  3. Reports calls that re-acquire a lock the caller already holds on
//     the same receiver — a guaranteed self-deadlock, since sync.Mutex
//     is not reentrant.
//
// Locks are identified by (package, type, field) — every instance of
// the type shares the identity, which is the granularity lock-ordering
// disciplines are stated at — or by package-level variable. Mutexes in
// local variables have no cross-function identity and are skipped.
// Blind spots, by construction of the static call graph: calls through
// interfaces and function values, and code inside go statements and
// function literals (it runs outside the caller's critical section).
// Recursion is handled by under-approximating the recursive branch.
var LockOrder = &Analyzer{
	ID: idLockOrder,
	Doc: "no lock-order cycles across the module call graph; no lock-held call " +
		"chains into blocking channel ops; no re-locking a held lock on the same receiver",
	RunModule: runLockOrder,
}

func runLockOrder(m *Module) []Finding {
	a := &lockAnalysis{
		m:         m,
		summaries: map[*moduleFunc]*lockSummary{},
		visiting:  map[*moduleFunc]bool{},
		edges:     map[string]map[string]*lockEdge{},
	}
	for _, fn := range m.order {
		a.summary(m.funcs[fn])
	}
	for _, fn := range m.order {
		a.scanRegions(m.funcs[fn])
	}
	a.cycleFindings()
	return a.findings
}

type lockAnalysis struct {
	m         *Module
	summaries map[*moduleFunc]*lockSummary
	visiting  map[*moduleFunc]bool
	// edges: outer lock id → inner lock id → first witness. The witness
	// is deterministic: functions are scanned in module order, statements
	// in source order.
	edges    map[string]map[string]*lockEdge
	findings []Finding
}

// lockSummary is what a caller needs to know about a function without
// looking inside it.
type lockSummary struct {
	// acquires maps each lock id the function may take — directly or
	// through calls — to the call chain (display names, starting with
	// the function itself) reaching the acquisition.
	acquires map[string][]string
	// blocks is the call chain down to a blocking channel op the
	// function may perform, nil if none.
	blocks []string
}

type lockEdge struct {
	pos   token.Position
	chain []string // call chain to the inner acquisition; nil for a direct nested lock
}

// summary computes (and memoizes) the transitive lock facts for mf.
// On recursion the back edge contributes nothing: the analysis
// under-approximates rather than loops.
func (a *lockAnalysis) summary(mf *moduleFunc) *lockSummary {
	if s, ok := a.summaries[mf]; ok {
		return s
	}
	if a.visiting[mf] {
		return &lockSummary{acquires: map[string][]string{}}
	}
	a.visiting[mf] = true
	defer delete(a.visiting, mf)

	me := funcDisplay(mf.fn)
	s := &lockSummary{acquires: map[string][]string{}}
	walkSameFlow(mf.decl.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, _, _, ok := lockAcquire(mf.pkg, call); ok {
			if _, have := s.acquires[id]; !have {
				s.acquires[id] = []string{me}
			}
		}
	})
	if n := directBlockingOp(mf.decl.Body); n != nil {
		s.blocks = []string{me}
	}
	for _, c := range mf.calls {
		cf := a.m.declOf(c.callee)
		if cf == nil || cf == mf {
			continue
		}
		cs := a.summary(cf)
		for id, chain := range cs.acquires {
			if _, have := s.acquires[id]; !have {
				s.acquires[id] = append([]string{me}, chain...)
			}
		}
		if s.blocks == nil && cs.blocks != nil {
			s.blocks = append([]string{me}, cs.blocks...)
		}
	}
	a.summaries[mf] = s
	return s
}

// directBlockingOp returns the first channel operation in body that can
// block on the caller's own goroutine: a send, a receive, or a select
// without a default case. Operations inside go statements and function
// literals run elsewhere; comm clauses of a select with default are
// non-blocking probes (their bodies still count).
func directBlockingOp(body ast.Node) ast.Node {
	var found ast.Node
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.SelectStmt:
				hasDefault := false
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					found = n
					return false
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CommClause)
					if !ok {
						continue
					}
					for _, stmt := range cc.Body {
						walk(stmt)
					}
				}
				return false
			case *ast.SendStmt:
				found = n
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					found = n
					return false
				}
			}
			return true
		})
	}
	walk(body)
	return found
}

// scanRegions finds every lock-held region in mf (reusing the pairing
// shapes the mutex analyzer defines: defer-unlock-next-statement, or a
// matching unlock later in the block) and records ordering edges and
// interprocedural findings for what happens inside it.
func (a *lockAnalysis) scanRegions(mf *moduleFunc) {
	p := mf.pkg
	walkSameFlow(mf.decl.Body, func(n ast.Node) {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return
		}
		stmts := block.List
		for i, stmt := range stmts {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, owner, unlockName, ok := lockAcquire(p, call)
			if !ok {
				continue
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			holder := types.ExprString(sel.X) // "s.mu" for s.mu.Lock(), "s" for an embedded s.Lock()

			region := stmts[i+1:]
			if i+1 < len(stmts) && deferUnlockMatches(p, stmts[i+1], holder, unlockName) {
				region = stmts[i+2:]
			} else {
				for j := i + 1; j < len(stmts); j++ {
					if unlockMatches(p, stmts[j], holder, unlockName) || deferUnlockMatches(p, stmts[j], holder, unlockName) {
						region = stmts[i+1 : j]
						break
					}
					if _, isRet := stmts[j].(*ast.ReturnStmt); isRet {
						region = stmts[i+1 : j]
						break
					}
				}
			}
			a.scanHeldRegion(mf, heldLock{id: id, owner: owner, holder: holder, unlockName: unlockName}, region)
		}
	})
}

// heldLock carries the context of one held-lock region scan.
type heldLock struct {
	id         string // lock identity, e.g. "kvstore.ClientV2.mu"
	owner      string // rendered expression owning the lock ("cl")
	holder     string // rendered lock expression ("cl.mu"), for unlock matching
	unlockName string // "Unlock" or "RUnlock"
}

// scanHeldRegion processes the statements executed while the lock is
// held. It recurses into nested statement lists itself (rather than
// blind ast.Inspect) so that the guard-clause pattern —
//
//	if cond {
//	    mu.Unlock()
//	    somethingSlow() // runs unlocked
//	    return
//	}
//
// stops the scan of that branch at the unlock instead of attributing
// the rest of the branch to the critical section.
func (a *lockAnalysis) scanHeldRegion(mf *moduleFunc, h heldLock, region []ast.Stmt) {
	p := mf.pkg
	for _, stmt := range region {
		if unlockMatches(p, stmt, h.holder, h.unlockName) {
			return
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.BlockStmt:
				a.scanHeldRegion(mf, h, n.List)
				return false
			case *ast.CaseClause:
				a.scanHeldRegion(mf, h, n.Body)
				return false
			case *ast.CommClause:
				a.scanHeldRegion(mf, h, n.Body)
				return false
			case *ast.CallExpr:
				a.checkHeldCall(mf, h, n)
			}
			return true
		})
	}
}

// checkHeldCall classifies one call made while h is held.
func (a *lockAnalysis) checkHeldCall(mf *moduleFunc, h heldLock, call *ast.CallExpr) {
	p := mf.pkg
	id, owner := h.id, h.owner
	// Direct nested acquisition: an ordering edge, or a double-lock
	// when it is the same lock on the same owner.
	if id2, owner2, _, ok := lockAcquire(p, call); ok {
		if id2 != id {
			a.addEdge(id, id2, p.position(call), nil)
		} else if owner2 == owner {
			a.findings = append(a.findings, p.finding(idLockOrder, call,
				"%s locks %s while %s already holds it (sync mutexes are not reentrant: guaranteed self-deadlock)",
				owner2, id2, owner))
		}
		return
	}
	cf := a.m.declOf(calleeFunc(p.Info, call))
	if cf == nil {
		return
	}
	cs := a.summary(cf)
	recv := ""
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recv = types.ExprString(sel.X)
	}
	ids := make([]string, 0, len(cs.acquires))
	for id2 := range cs.acquires {
		ids = append(ids, id2)
	}
	sort.Strings(ids)
	for _, id2 := range ids {
		chain := cs.acquires[id2]
		if id2 != id {
			a.addEdge(id, id2, p.position(call), chain)
			continue
		}
		// Re-acquiring the held lock is only a self-deadlock if it is
		// the same instance; "same rendered receiver" is the heuristic
		// for that.
		if recv != "" && recv == owner {
			a.findings = append(a.findings, p.finding(idLockOrder, call,
				"calling %s while %s holds %s re-locks it on the same receiver (%s); sync mutexes are not reentrant",
				chainString(chain), owner, id, chainString(chain)))
		}
	}
	if cs.blocks != nil {
		a.findings = append(a.findings, p.finding(idLockOrder, call,
			"call while %s is held reaches a blocking channel op (%s); a blocked holder stalls every goroutine contending for %s",
			id, chainString(cs.blocks), id))
	}
}

func (a *lockAnalysis) addEdge(outer, inner string, pos token.Position, chain []string) {
	em := a.edges[outer]
	if em == nil {
		em = map[string]*lockEdge{}
		a.edges[outer] = em
	}
	if em[inner] == nil {
		em[inner] = &lockEdge{pos: pos, chain: chain}
	}
}

// cycleFindings runs Tarjan's SCC over the lock-ordering graph and
// reports every strongly connected component of two or more locks as a
// potential deadlock, citing each intra-component edge's witness.
func (a *lockAnalysis) cycleFindings() {
	var nodes []string
	seen := map[string]bool{}
	addNode := func(id string) {
		if !seen[id] {
			seen[id] = true
			nodes = append(nodes, id)
		}
	}
	for outer, em := range a.edges {
		addNode(outer)
		for inner := range em {
			addNode(inner)
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succ []string
		for w := range a.edges[v] {
			succ = append(succ, w)
		}
		sort.Strings(succ)
		for _, w := range succ {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sort.Strings(comp)
				comps = append(comps, comp)
			}
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })

	for _, comp := range comps {
		inComp := map[string]bool{}
		for _, id := range comp {
			inComp[id] = true
		}
		var parts []string
		var pos token.Position
		for _, outer := range comp {
			var inners []string
			for inner := range a.edges[outer] {
				if inComp[inner] {
					inners = append(inners, inner)
				}
			}
			sort.Strings(inners)
			for _, inner := range inners {
				e := a.edges[outer][inner]
				if pos.Filename == "" {
					pos = e.pos
				}
				part := fmt.Sprintf("%s → %s at %s:%d", outer, inner, e.pos.Filename, e.pos.Line)
				if e.chain != nil {
					part += " (via " + chainString(e.chain) + ")"
				}
				parts = append(parts, part)
			}
		}
		a.findings = append(a.findings, Finding{
			Check: idLockOrder,
			Pos:   pos,
			Message: fmt.Sprintf("potential deadlock: lock-order cycle among %d locks: %s; pick one acquisition order and use it everywhere",
				len(comp), strings.Join(parts, "; ")),
		})
	}
}
