package access

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/sampler"
)

// Windowed is a memory-bounded future-access oracle: it keeps detailed
// access lists only for a sliding window of epochs, plus an exact
// remaining-use counter per sample for the entire run.
//
// A full Plan for the paper's ImageNet-22K at 50 epochs costs gigabytes of
// int32s across 8 nodes. The Lobster policies never need that much
// foresight: the reuse-distance rule thresholds against 2·I − h (two
// epochs), and victim ordering only needs to distinguish "soon" from
// "far". Windowed therefore answers
//
//   - NextUse exactly within its window, and with a conservative horizon
//     value (the window end) beyond it — still "far enough" for both the
//     distance rule and farthest-first eviction;
//   - UsesRemaining exactly for the whole run, by combining in-window
//     counts with a beyond-window counter maintained as the window slides.
//
// Advance must be called at each epoch boundary (the pipeline does this).
// Not safe for concurrent use; the online runtime guards it with the
// node-cache mutex.
type Windowed struct {
	sched        *sampler.Schedule
	node         int
	gpusPerNode  int
	epochs       int
	windowEpochs int
	iters        int

	startEpoch int // first epoch with detail
	endEpoch   int // one past the last epoch with detail

	window      [][]Iter // per sample: ascending accesses within the window
	afterWindow []int32  // per sample: accesses at or after endEpoch
}

// BuildWindowed constructs the windowed oracle with detail for the first
// windowEpochs epochs (minimum 3: current + the two epochs the distance
// rule reasons about).
func BuildWindowed(s *sampler.Schedule, node, gpusPerNode, epochs, windowEpochs int) (*Windowed, error) {
	if s == nil {
		return nil, fmt.Errorf("access: nil schedule")
	}
	if node < 0 || gpusPerNode < 1 || (node+1)*gpusPerNode > s.WorldSize() {
		return nil, fmt.Errorf("access: node %d with %d GPUs out of world %d", node, gpusPerNode, s.WorldSize())
	}
	if epochs < 1 {
		return nil, fmt.Errorf("access: epochs %d < 1", epochs)
	}
	if windowEpochs < 3 {
		windowEpochs = 3
	}
	if windowEpochs > epochs {
		windowEpochs = epochs
	}
	w := &Windowed{
		sched:        s,
		node:         node,
		gpusPerNode:  gpusPerNode,
		epochs:       epochs,
		windowEpochs: windowEpochs,
		iters:        s.IterationsPerEpoch(),
		window:       make([][]Iter, s.Dataset().Len()),
		afterWindow:  make([]int32, s.Dataset().Len()),
	}
	// Count beyond-window accesses exactly, one epoch at a time (O(1)
	// extra memory beyond the counters).
	var batch []dataset.SampleID
	for epoch := windowEpochs; epoch < epochs; epoch++ {
		for it := 0; it < w.iters; it++ {
			batch = s.NodeBatch(batch[:0], epoch, it, node, gpusPerNode)
			for _, id := range batch {
				w.afterWindow[id]++
			}
		}
	}
	for epoch := 0; epoch < windowEpochs; epoch++ {
		w.addEpochDetail(epoch)
	}
	w.endEpoch = windowEpochs
	return w, nil
}

func (w *Windowed) addEpochDetail(epoch int) {
	var batch []dataset.SampleID
	for it := 0; it < w.iters; it++ {
		g := Iter(epoch*w.iters + it)
		batch = w.sched.NodeBatch(batch[:0], epoch, it, w.node, w.gpusPerNode)
		for _, id := range batch {
			w.window[id] = append(w.window[id], g)
		}
	}
}

// Advance slides the window so that `epoch` is its first detailed epoch.
// Detail for epochs before it is dropped; detail for newly covered epochs
// is generated and removed from the beyond-window counters. Advancing
// backwards is a no-op.
func (w *Windowed) Advance(epoch int) {
	if epoch <= w.startEpoch {
		return
	}
	// Drop detail before the new start.
	cutoff := Iter(epoch * w.iters)
	for id := range w.window {
		list := w.window[id]
		if len(list) == 0 || list[0] >= cutoff {
			continue
		}
		i := sort.Search(len(list), func(k int) bool { return list[k] >= cutoff })
		w.window[id] = append(w.window[id][:0], list[i:]...)
	}
	w.startEpoch = epoch
	// Extend detail to keep the window full.
	newEnd := epoch + w.windowEpochs
	if newEnd > w.epochs {
		newEnd = w.epochs
	}
	var batch []dataset.SampleID
	for e := w.endEpoch; e < newEnd; e++ {
		for it := 0; it < w.iters; it++ {
			g := Iter(e*w.iters + it)
			batch = w.sched.NodeBatch(batch[:0], e, it, w.node, w.gpusPerNode)
			for _, id := range batch {
				w.window[id] = append(w.window[id], g)
				w.afterWindow[id]--
			}
		}
	}
	if newEnd > w.endEpoch {
		w.endEpoch = newEnd
	}
}

// horizon is the conservative next-use reported for samples whose next
// access lies beyond the detailed window: the first iteration past it.
func (w *Windowed) horizon() Iter { return Iter(w.endEpoch * w.iters) }

// NextUse returns the next access strictly after `after`: exact within
// the window, the window horizon when the sample is only used later, and
// NoAccess when it is never used again.
func (w *Windowed) NextUse(id dataset.SampleID, after Iter) Iter {
	list := w.window[id]
	i := sort.Search(len(list), func(k int) bool { return list[k] > after })
	if i < len(list) {
		return list[i]
	}
	if w.afterWindow[id] > 0 {
		return w.horizon()
	}
	return NoAccess
}

// UsesRemaining returns the exact number of accesses strictly after
// `after` across the whole run, provided `after` lies within the detailed
// window (the policies only query at the current iteration, which always
// does).
func (w *Windowed) UsesRemaining(id dataset.SampleID, after Iter) int {
	list := w.window[id]
	i := sort.Search(len(list), func(k int) bool { return list[k] > after })
	return len(list) - i + int(w.afterWindow[id])
}

// IterationsPerEpoch returns I.
func (w *Windowed) IterationsPerEpoch() int { return w.iters }

// WindowBounds returns the detailed epoch range [start, end).
func (w *Windowed) WindowBounds() (start, end int) { return w.startEpoch, w.endEpoch }
