// Command lobster-bench regenerates the paper's tables and figures: it
// runs every experiment (or a selected one) at the chosen scale and prints
// the reproduced rows/series with the paper's published values alongside.
//
// Examples:
//
//	lobster-bench                         # everything at small scale
//	lobster-bench -experiment fig07a      # one figure
//	lobster-bench -scale medium -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	var (
		scaleName = flag.String("scale", "small", "tiny | small | medium | full")
		expID     = flag.String("experiment", "", "run only this experiment id (e.g. fig07a); empty = all")
		epochs    = flag.Int("epochs", 0, "override epochs (0 = per-scale default)")
		seed      = flag.Uint64("seed", 42, "base seed")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		mdPath    = flag.String("markdown", "", "also write the full report as a Markdown file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-13s %s\n              paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	scale, err := dataset.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	params := experiments.Params{Scale: scale, Epochs: *epochs, Seed: *seed}

	todo := experiments.All()
	if *expID != "" {
		e, err := experiments.ByID(*expID)
		if err != nil {
			fatal(err)
		}
		todo = []experiments.Experiment{e}
	}
	var md strings.Builder
	if *mdPath != "" {
		fmt.Fprintf(&md, "# Lobster reproduction report\n\nscale: %s, seed: %d\n\n", scale, *seed)
	}
	for _, e := range todo {
		start := time.Now()
		rep, err := e.Run(params)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Printf("################ %s — %s\n", e.ID, e.Title)
		fmt.Printf("paper: %s\n\n", e.Paper)
		fmt.Print(rep.Text())
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		if *mdPath != "" {
			fmt.Fprintf(&md, "## %s — %s\n\npaper: %s\n\n```\n", e.ID, e.Title, e.Paper)
			for _, line := range rep.Lines {
				md.WriteString(line)
				md.WriteByte('\n')
			}
			fmt.Fprintf(&md, "```\n\nheadline values: %s\n\n", strings.Join(rep.SortedValues(), ", "))
		}
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("markdown report written to %s\n", *mdPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lobster-bench:", err)
	os.Exit(1)
}
