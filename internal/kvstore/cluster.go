package kvstore

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// shardClient is the per-shard surface Cluster runs on; both the v1
// Client and the pipelined ClientV2 implement it.
type shardClient interface {
	Get(key string) ([]byte, bool, error)
	Put(key string, val []byte) error
	Delete(key string) error
	Stats() (Stats, error)
	MultiGet(keys []string) ([][]byte, error)
	MultiPut(keys []string, vals [][]byte) error
	Close()
}

// Cluster shards keys across several servers by FNV-1a hash — the
// KV-store alternative to the node-to-node distribution manager. Batch
// ops group keys by shard and fan the per-shard batches out
// concurrently, one round trip per shard.
type Cluster struct {
	clients []shardClient

	// repl is the read-replica count: each key's value is written
	// through to the repl shards after its primary in ring order, and
	// reads may hedge to the first replica (hedge.go). 0 = no
	// replication.
	repl  int
	hedge *hedgeTracker

	// down marks shards the caller knows are lost (SetShardDown): reads
	// route past them along the replica ring, writes skip them, and
	// hedges never pick them. This is client-side routing state only —
	// the recovery half is Repair, which re-replicates keys once the
	// shard map changes.
	down []atomic.Bool

	// hedgeFired counts hedge requests actually sent; hedgeWon counts
	// races the hedge arm won. fired >> won means the delay is too
	// aggressive; won ≈ fired means the primary is genuinely slow.
	hedgeFired atomic.Uint64
	hedgeWon   atomic.Uint64

	// scratch pools the per-shard grouping state MultiGet/MultiPut
	// rebuild on every call, so the prefetch hot path stops allocating.
	scratch sync.Pool
}

// HedgeCounters snapshots the cluster's hedged-read counters.
func (c *Cluster) HedgeCounters() (fired, won uint64) {
	return c.hedgeFired.Load(), c.hedgeWon.Load()
}

// clusterScratch is one batch op's reusable grouping state.
type clusterScratch struct {
	keys  [][]string // per shard: keys routed there
	vals  [][][]byte // per shard: values routed there (MultiPut)
	idx   [][]int    // per shard: original positions
	hedge []int      // per shard: group hedge target, -1 = none
}

// NewCluster connects to every shard address with the pipelined v2
// protocol (conns multiplexed connections per shard). Use NewClusterV1
// for v1-only peers.
func NewCluster(addrs []string, conns int) (*Cluster, error) {
	return NewClusterConfig(addrs, ClusterConfig{Conns: conns})
}

// ClusterConfig configures a v2 cluster beyond its shard addresses.
type ClusterConfig struct {
	// Conns is the number of multiplexed connections per shard (min 1).
	Conns int
	// Window is the per-connection in-flight cap (see ClientV2Options).
	Window int
	// Replicas is the read-replica count per key: writes go through to
	// this many extra shards (ring order after the primary) and reads
	// may hedge to the first replica. Clamped to Shards-1; 0 disables
	// replication and hedging.
	Replicas int
	// HedgeDelay, when > 0, fixes the hedge delay. 0 selects the
	// adaptive policy: a tracked quantile of recent primary-read
	// latencies, clamped to [HedgeMin, HedgeMax].
	HedgeDelay time.Duration
	// HedgeQuantile is the tracked latency quantile the adaptive delay
	// follows (default 0.95).
	HedgeQuantile float64
	// HedgeMin and HedgeMax clamp the adaptive delay (defaults 200µs
	// and 5ms).
	HedgeMin, HedgeMax time.Duration
}

// NewClusterConfig connects a v2 cluster with explicit options,
// including read replication and hedged reads (hedge.go).
func NewClusterConfig(addrs []string, cfg ClusterConfig) (*Cluster, error) {
	c, err := newCluster(addrs, func(addr string) (shardClient, error) {
		return NewClientV2Options(addr, ClientV2Options{Conns: cfg.Conns, Window: cfg.Window})
	})
	if err != nil {
		return nil, err
	}
	if cfg.Replicas >= len(addrs) {
		cfg.Replicas = len(addrs) - 1
	}
	if cfg.Replicas > 0 {
		c.repl = cfg.Replicas
		c.hedge = newHedgeTracker(cfg.HedgeDelay, cfg.HedgeQuantile, cfg.HedgeMin, cfg.HedgeMax)
	}
	return c, nil
}

// NewClusterV1 connects with the legacy one-op-per-round-trip protocol
// (poolSize pooled connections per shard). Batch ops degrade to key-
// at-a-time loops; kept for compatibility and as the benchmark
// baseline.
func NewClusterV1(addrs []string, poolSize int) (*Cluster, error) {
	return newCluster(addrs, func(addr string) (shardClient, error) {
		return NewClient(addr, poolSize)
	})
}

func newCluster(addrs []string, dial func(string) (shardClient, error)) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("kvstore: no shard addresses")
	}
	c := &Cluster{}
	shards := len(addrs)
	c.down = make([]atomic.Bool, shards)
	c.scratch.New = func() any {
		return &clusterScratch{
			keys:  make([][]string, shards),
			vals:  make([][][]byte, shards),
			idx:   make([][]int, shards),
			hedge: make([]int, shards),
		}
	}
	for _, addr := range addrs {
		cl, err := dial(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.clients = append(c.clients, cl)
	}
	return c, nil
}

// shardIndex picks the shard for a key.
func (c *Cluster) shardIndex(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key)) // hash.Hash.Write never returns an error
	return int(h.Sum32()) % len(c.clients)
}

// shard picks the client for a key.
func (c *Cluster) shard(key string) shardClient {
	return c.clients[c.shardIndex(key)]
}

// SetShardDown marks shard s lost (true) or restored (false) in the
// cluster's routing: reads route past a down shard along its replica
// ring, writes skip it, hedges never pick it. Marking a shard down is
// the client half of surviving a crash; call Repair after the shard
// map changes to restore lost replica copies. Safe to call while ops
// are in flight.
func (c *Cluster) SetShardDown(s int, down bool) {
	if s < 0 || s >= len(c.down) {
		return
	}
	c.down[s].Store(down)
}

// ShardDown reports whether shard s is marked down.
func (c *Cluster) ShardDown(s int) bool {
	return s >= 0 && s < len(c.down) && c.down[s].Load()
}

func (c *Cluster) isDown(s int) bool { return c.down[s].Load() }

// routeIndex picks the shard to read a key from: its primary, or —
// when the primary is marked down — the first live ring member after
// it. With replication the first repl successors hold the key's
// write-through copies; past them the walk degrades to a clean miss,
// which is correct for a cache tier (the caller falls to the PFS).
func (c *Cluster) routeIndex(key string) int {
	return c.routeFrom(c.shardIndex(key))
}

func (c *Cluster) routeFrom(s0 int) int {
	n := len(c.clients)
	for r := 0; r < n; r++ {
		t := (s0 + r) % n
		if !c.isDown(t) {
			return t
		}
	}
	return s0 // every shard marked down: let the op fail at the primary
}

// hedgeIndex picks the shard a read routed to `routed` may hedge to:
// the first live holder of the key's write-through copies (primary s0
// plus its repl ring successors) other than the routed shard itself.
// Returns -1 when no other live copy-holder exists — hedging to a
// shard outside the key's replication window would race its clean miss
// against the real copy and sometimes win.
func (c *Cluster) hedgeIndex(s0, routed int) int {
	if c.repl <= 0 {
		return -1
	}
	n := len(c.clients)
	for r := 0; r <= c.repl; r++ {
		t := (s0 + r) % n
		if t != routed && !c.isDown(t) {
			return t
		}
	}
	return -1
}

// Get fetches a key from its shard (routing past down shards), hedging
// to another live copy-holder when replication is configured.
func (c *Cluster) Get(key string) ([]byte, bool, error) {
	s0 := c.shardIndex(key)
	s := c.routeFrom(s0)
	if pc, rc := c.hedgePair(s, c.hedgeIndex(s0, s)); rc != nil {
		return c.hedgedGet(pc, rc, key)
	}
	return c.clients[s].Get(key)
}

// tracedClient is the optional per-shard surface for reads carrying a
// trace context; the pipelined ClientV2 implements it, v1 clients fall
// back to the untraced op.
type tracedClient interface {
	GetTraced(key string, tctx obs.TraceCtx) ([]byte, bool, error)
	MultiGetTraced(keys []string, tctx obs.TraceCtx) ([][]byte, error)
}

// GetTraced is Get carrying a trace context onto the wire (the 0xA4
// frame), so the serving shard's span records the originating
// rank/iter. Hedged reads stay untraced — the hedge arms race on two
// shards and a per-arm span would double-count the read — as do v1
// shard clients, which have no trace extension.
func (c *Cluster) GetTraced(key string, tctx obs.TraceCtx) ([]byte, bool, error) {
	s0 := c.shardIndex(key)
	s := c.routeFrom(s0)
	if pc, rc := c.hedgePair(s, c.hedgeIndex(s0, s)); rc != nil {
		return c.hedgedGet(pc, rc, key)
	}
	if tc, ok := c.clients[s].(tracedClient); ok && tctx.Valid() {
		return tc.GetTraced(key, tctx)
	}
	return c.clients[s].Get(key)
}

// Put stores a key on its shard and writes through to its replicas,
// skipping shards marked down. Replica writes are best-effort: a
// failed replica degrades a future hedge to a cache miss, it does not
// fail the write. The first live write's error is returned (the
// primary's, unless the primary is down).
func (c *Cluster) Put(key string, val []byte) error {
	s := c.shardIndex(key)
	var err error
	wrote := false
	for r := 0; r <= c.repl; r++ {
		t := (s + r) % len(c.clients)
		if c.isDown(t) {
			continue
		}
		e := c.clients[t].Put(key, val)
		if !wrote {
			err, wrote = e, true
		}
	}
	if !wrote {
		return fmt.Errorf("kvstore: every shard for key %q is marked down", key)
	}
	return err
}

// Delete removes a key from its shard and its replicas, skipping
// shards marked down.
func (c *Cluster) Delete(key string) error {
	s := c.shardIndex(key)
	var err error
	wrote := false
	for r := 0; r <= c.repl; r++ {
		t := (s + r) % len(c.clients)
		if c.isDown(t) {
			continue
		}
		e := c.clients[t].Delete(key)
		if !wrote {
			err, wrote = e, true
		}
	}
	if !wrote {
		return fmt.Errorf("kvstore: every shard for key %q is marked down", key)
	}
	return err
}

// Repair re-replicates keys after a shard loss or revival: each key
// whose value survives on any live member of its replica ring is
// rewritten through the whole live ring, restoring the copies a dead
// shard took with it and warming a revived shard's cold store. Keys no
// live member holds are skipped — they re-enter the tier through the
// normal PFS write-back path. Returns how many keys were restored and
// the first error encountered (the repair continues past errors).
func (c *Cluster) Repair(keys []string) (restored int, err error) {
	n := len(c.clients)
	for _, key := range keys {
		s := c.shardIndex(key)
		var val []byte
		found := false
		for r := 0; r <= c.repl && !found; r++ {
			t := (s + r) % n
			if c.isDown(t) {
				continue
			}
			v, ok, gerr := c.clients[t].Get(key)
			if gerr != nil {
				if err == nil {
					err = gerr
				}
				continue
			}
			if ok {
				val, found = v, true
			}
		}
		if !found {
			continue
		}
		wrote := false
		for r := 0; r <= c.repl; r++ {
			t := (s + r) % n
			if c.isDown(t) {
				continue
			}
			if perr := c.clients[t].Put(key, val); perr != nil {
				if err == nil {
					err = perr
				}
			} else {
				wrote = true
			}
		}
		if wrote {
			restored++
		}
	}
	return restored, err
}

// Shards returns the number of shards.
func (c *Cluster) Shards() int { return len(c.clients) }

// shardMultiGet runs one shard's batch, hedged to the group's hedge
// shard h when one exists (h < 0 = plain read). A valid tctx rides the
// unhedged v2 path as an 0xA4 frame (see GetTraced).
func (c *Cluster) shardMultiGet(s, h int, keys []string, tctx obs.TraceCtx) ([][]byte, error) {
	if pc, rc := c.hedgePair(s, h); rc != nil {
		return c.hedgedMultiGet(pc, rc, keys)
	}
	if tc, ok := c.clients[s].(tracedClient); ok && tctx.Valid() {
		return tc.MultiGetTraced(keys, tctx)
	}
	return c.clients[s].MultiGet(keys)
}

// MultiGet fetches a batch of keys: grouped by shard, fanned out
// concurrently (one round trip per shard on v2 clients), reassembled in
// request order. vals[i] is nil when keys[i] is absent and non-nil
// (possibly empty) when present. When some — but not all — shard
// batches fail, the healthy shards' values are returned alongside a
// *PartialError, so tolerant callers keep what arrived.
func (c *Cluster) MultiGet(keys []string) ([][]byte, error) {
	return c.multiGet(keys, 0)
}

// MultiGetTraced is MultiGet carrying a trace context onto the wire for
// every unhedged v2 shard batch (see GetTraced).
func (c *Cluster) MultiGetTraced(keys []string, tctx obs.TraceCtx) ([][]byte, error) {
	return c.multiGet(keys, tctx)
}

func (c *Cluster) multiGet(keys []string, tctx obs.TraceCtx) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if len(c.clients) == 1 {
		return c.shardMultiGet(0, -1, keys, tctx)
	}
	sc := c.scratch.Get().(*clusterScratch)
	defer c.putScratch(sc)
	for i, key := range keys {
		s0 := c.shardIndex(key)
		s := c.routeFrom(s0) // route past down shards per key
		h := c.hedgeIndex(s0, s)
		if len(sc.keys[s]) == 0 {
			sc.hedge[s] = h
		} else if sc.hedge[s] != h {
			// Keys with different live copy-holders landed on this
			// routed shard (some re-routed off a down primary): no
			// single hedge target serves them all, so the group reads
			// unhedged rather than risk a spurious miss.
			sc.hedge[s] = -1
		}
		sc.keys[s] = append(sc.keys[s], key)
		sc.idx[s] = append(sc.idx[s], i)
	}
	out := make([][]byte, len(keys))
	var wg sync.WaitGroup
	errs := make([]error, len(c.clients))
	for s := range c.clients {
		if len(sc.keys[s]) == 0 {
			continue
		}
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals, err := c.shardMultiGet(s, sc.hedge[s], sc.keys[s], tctx)
			if err != nil {
				errs[s] = err
				return
			}
			for j, v := range vals {
				out[sc.idx[s][j]] = v
			}
		}()
	}
	wg.Wait()
	var firstErr error
	attempted, failed := 0, 0
	for s := range c.clients {
		if len(sc.keys[s]) == 0 {
			continue
		}
		attempted++
		if errs[s] != nil {
			failed++
			if firstErr == nil {
				firstErr = errs[s]
			}
		}
	}
	switch {
	case failed == 0:
		return out, nil
	case failed == attempted:
		return nil, firstErr
	default:
		return out, &PartialError{Failed: failed, Attempted: attempted, Err: firstErr}
	}
}

// MultiPut stores a batch of key/value pairs, grouped by shard and
// fanned out concurrently; with replication each pair is written
// through to its replicas' batches too. Storage is best-effort per key;
// the first error is returned after every shard's batch completes.
func (c *Cluster) MultiPut(keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("kvstore: MultiPut got %d keys, %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return nil
	}
	if len(c.clients) == 1 {
		return c.clients[0].MultiPut(keys, vals)
	}
	sc := c.scratch.Get().(*clusterScratch)
	defer c.putScratch(sc)
	for i, key := range keys {
		s := c.shardIndex(key)
		for r := 0; r <= c.repl; r++ {
			t := (s + r) % len(c.clients)
			if c.isDown(t) {
				continue // best-effort: a down shard just loses the copy
			}
			sc.keys[t] = append(sc.keys[t], key)
			sc.vals[t] = append(sc.vals[t], vals[i])
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(c.clients))
	for s, cl := range c.clients {
		if len(sc.keys[s]) == 0 {
			continue
		}
		s, cl := s, cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[s] = cl.MultiPut(sc.keys[s], sc.vals[s])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// putScratch clears and recycles a grouping scratch. Value references
// are nilled so the pool never pins payload bytes across calls.
func (c *Cluster) putScratch(sc *clusterScratch) {
	for s := range sc.keys {
		for j := range sc.vals[s] {
			sc.vals[s][j] = nil
		}
		sc.keys[s] = sc.keys[s][:0]
		sc.vals[s] = sc.vals[s][:0]
		sc.idx[s] = sc.idx[s][:0]
	}
	c.scratch.Put(sc)
}

// Stats aggregates all shards' counters.
func (c *Cluster) Stats() (Stats, error) {
	var total Stats
	for _, cl := range c.clients {
		st, err := cl.Stats()
		if err != nil {
			return Stats{}, err
		}
		total.Items += st.Items
		total.UsedBytes += st.UsedBytes
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Evictions += st.Evictions
		total.TooLarge += st.TooLarge
		total.ShedDeadline += st.ShedDeadline
		total.ShedQuota += st.ShedQuota
		total.ShedQueue += st.ShedQueue
	}
	return total, nil
}

// Close closes every shard client.
func (c *Cluster) Close() {
	for _, cl := range c.clients {
		cl.Close()
	}
}
