package pipeline

import (
	"testing"

	"repro/internal/loader"
)

// BenchmarkSimulationStep measures simulator throughput: iterations of an
// 8-GPU node simulated per second (the planner's cost).
func BenchmarkSimulationStep(b *testing.B) {
	cfg := testConfig(b, loader.Lobster(), 1)
	cfg.Epochs = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
