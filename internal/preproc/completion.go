package preproc

import (
	"sync"
	"sync/atomic"
)

// Completion collects one batch's preprocessing results and wakes the
// consumer exactly once, when the last result lands. It replaces the N
// per-sample `chan Result` receives of the per-sample data path with one
// atomic decrement per sample and a single channel wake per batch.
//
// Protocol: Reset(n) arms the completion for an n-result batch; jobs
// carrying {Comp, Slot} have their Result written into slot Slot by the
// worker that ran them; Wait blocks until the last slot completes, then
// returns the slot-ordered results. Slot order is batch order, so —
// unlike draining a channel — the result sequence is deterministic.
//
// Memory model: each worker's slot write is sequenced before its atomic
// decrement; the final decrement observes all earlier decrements (atomic
// RMWs on one location are totally ordered), so every slot write
// happens-before the wake send, and the waiter reads fully-published
// results.
//
// Completions are pooled: lease with GetCompletion, give back with
// Release once the results are consumed. The results slice is owned by
// the Completion — callers must not retain it past the next Reset or
// Release.
type Completion struct {
	results   []Result
	remaining atomic.Int64
	wake      chan struct{}
}

var completionPool = sync.Pool{
	New: func() any { return &Completion{wake: make(chan struct{}, 1)} },
}

// GetCompletion leases a Completion from the package pool. The runtime
// holds one per rank for the whole run, so pool traffic is per-run, not
// per-batch.
func GetCompletion() *Completion { return completionPool.Get().(*Completion) }

// Release returns the completion to the pool. No batch may be in
// flight, and the caller must not touch the completion (or the results
// slice it handed out) afterwards.
func (c *Completion) Release() { completionPool.Put(c) }

// Reset arms the completion for a batch of n results. It must not be
// called while a previous batch is still in flight.
//
//lint:hotpath armed once per iteration on the training critical path; BENCH_runtime.json pins 0 allocs/op
func (c *Completion) Reset(n int) {
	if cap(c.results) < n {
		//lint:allow hotpath amortized growth: one completion per rank, so this runs once per batch-size high-water mark
		c.results = make([]Result, n)
	}
	c.results = c.results[:n]
	for i := range c.results {
		c.results[i] = Result{}
	}
	c.remaining.Store(int64(n))
	if n == 0 {
		// No slots will ever complete; wake the waiter directly so
		// Reset(0)+Wait is well-defined.
		c.wake <- struct{}{}
	}
}

// complete records one slot's result; the last one wakes the waiter.
//
//lint:hotpath one call per sample on the batched completion path; BENCH_runtime.json pins 0 allocs/op
func (c *Completion) complete(slot int, r Result) {
	c.results[slot] = r
	if c.remaining.Add(-1) == 0 {
		c.wake <- struct{}{}
	}
}

// Wait blocks until every armed slot has completed and returns the
// slot-ordered results. The slice is valid until the next Reset or
// Release.
//
//lint:hotpath one wake per batch on the training critical path; BENCH_runtime.json pins 0 allocs/op
func (c *Completion) Wait() []Result {
	<-c.wake
	return c.results
}
