package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/loader"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/tier"
)

// TestBenchRuntimeJSON is the live-runtime data-path recording harness
// behind `make bench-runtime`.
//
// Default (no env) it is a CI-safe smoke test over the committed
// BENCH_runtime.json: the env section is present, every rank point
// (1/8/64) carries both paths with positive throughput, and the
// headline shows the batched path at >= 2x fewer allocations per
// sample with a samples/sec gain at 64 ranks.
//
// With LOBSTER_BENCH_RUNTIME=tiny it additionally re-measures a small
// end-to-end slice (1 and 8 ranks) in-process and checks the same
// invariants hold live — the verify.sh gate. With
// LOBSTER_BENCH_RUNTIME=1 it runs the full 1/8/64-rank matrix and
// rewrites BENCH_runtime.json at the repository root.
func TestBenchRuntimeJSON(t *testing.T) {
	switch os.Getenv("LOBSTER_BENCH_RUNTIME") {
	case "":
		benchRuntimeSmoke(t)
	case "tiny":
		benchRuntimeSmoke(t)
		benchRuntimeMeasure(t, false)
	default:
		benchRuntimeMeasure(t, true)
	}
}

// runtimePathMetrics is one data path's measurement at one rank count.
type runtimePathMetrics struct {
	SamplesPerSec   float64 `json:"samples_per_sec"`
	AllocsPerSample float64 `json:"allocs_per_sample"`
	StallP99Ms      float64 `json:"stall_p99_ms"`
	WallSeconds     float64 `json:"wall_seconds"`
	Samples         uint64  `json:"samples"`
}

// runtimeConfigResult compares the two paths at one rank count.
type runtimeConfigResult struct {
	Ranks          int                `json:"ranks"`
	Nodes          int                `json:"nodes"`
	GPUsPerNode    int                `json:"gpus_per_node"`
	Epochs         int                `json:"epochs"`
	BatchSize      int                `json:"batch_size"`
	Samples        int                `json:"dataset_samples"`
	PerSample      runtimePathMetrics `json:"per_sample"`
	Batched        runtimePathMetrics `json:"batched"`
	AllocReduction float64            `json:"alloc_reduction"`
	SpeedupPct     float64            `json:"samples_per_sec_gain_pct"`
}

// runtimeBenchFile is the schema of BENCH_runtime.json.
type runtimeBenchFile struct {
	Generated string `json:"generated"`
	Scale     string `json:"scale"`
	Note      string `json:"note"`
	Env       struct {
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"env"`
	Configs  []runtimeConfigResult `json:"configs"`
	Headline struct {
		AllocReduction64R float64 `json:"alloc_reduction_64r"`
		SpeedupPct64R     float64 `json:"samples_per_sec_gain_64r_pct"`
	} `json:"headline"`
}

// allocReductionBudget is the acceptance bound on the committed full
// run: the batched path must at least halve allocations per sample.
const allocReductionBudget = 2.0

func benchRuntimeSmoke(t *testing.T) {
	root, err := simRepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(root, "BENCH_runtime.json"))
	if err != nil {
		t.Fatalf("BENCH_runtime.json missing (regenerate with `make bench-runtime`): %v", err)
	}
	var f runtimeBenchFile
	if err := json.Unmarshal(buf, &f); err != nil {
		t.Fatalf("BENCH_runtime.json does not parse: %v", err)
	}
	if f.Generated == "" || f.Scale == "" {
		t.Fatalf("BENCH_runtime.json header incomplete: %+v", f)
	}
	if f.Env.GoVersion == "" || f.Env.NumCPU < 1 || f.Env.GOMAXPROCS < 1 || f.Env.GOOS == "" || f.Env.GOARCH == "" {
		t.Fatalf("BENCH_runtime.json env section incomplete: %+v", f.Env)
	}
	ranks := map[int]bool{}
	for _, c := range f.Configs {
		if c.Ranks != c.Nodes*c.GPUsPerNode {
			t.Fatalf("config ranks %d != %d nodes x %d gpus", c.Ranks, c.Nodes, c.GPUsPerNode)
		}
		for name, m := range map[string]runtimePathMetrics{"per_sample": c.PerSample, "batched": c.Batched} {
			if m.SamplesPerSec <= 0 || m.WallSeconds <= 0 || m.Samples == 0 {
				t.Fatalf("config ranks=%d %s metrics malformed: %+v", c.Ranks, name, m)
			}
			if m.AllocsPerSample < 0 || m.StallP99Ms < 0 {
				t.Fatalf("config ranks=%d %s has negative metrics: %+v", c.Ranks, name, m)
			}
		}
		ranks[c.Ranks] = true
	}
	for _, want := range []int{1, 8, 64} {
		if !ranks[want] {
			t.Fatalf("BENCH_runtime.json missing the %d-rank config", want)
		}
	}
	if f.Headline.AllocReduction64R < allocReductionBudget {
		t.Fatalf("committed alloc reduction at 64 ranks is %.2fx, below the %.1fx acceptance bound",
			f.Headline.AllocReduction64R, allocReductionBudget)
	}
	if f.Headline.SpeedupPct64R <= 0 {
		t.Fatalf("committed 64-rank samples/sec gain is %.2f%%; the batched path must be a measurable win",
			f.Headline.SpeedupPct64R)
	}
}

// benchRuntimeRun executes one instrumented run and returns its stats
// plus the worst per-rank stall p99 and the Mallocs delta across it.
func benchRuntimeRun(t *testing.T, ds *dataset.Dataset, nodes, gpus, epochs int, perSample bool) (*runtime.Stats, float64, uint64) {
	t.Helper()
	top := cluster.Topology{
		Nodes:       nodes,
		GPUsPerNode: gpus,
		CPUThreads:  8,
		CacheBytes:  ds.TotalBytes() / 3,
		NUMADomains: 2,
		Hierarchy:   tier.ThetaGPULike(),
	}
	model := cluster.DNNModel{Name: "toy", IterTime: 0.004, BatchSize: 8, TargetAccuracy: 0.7, ConvergeEpochs: 10}
	reg := obs.NewRegistry()
	opts := runtime.Options{
		Topology:  top,
		Dataset:   ds,
		Model:     model,
		Epochs:    epochs,
		Seed:      7,
		Strategy:  loader.Lobster(),
		TimeScale: 0.001,
		PerSample: perSample,
		Obs:       reg,
	}
	// Two collections quiesce the heap (and clear sync.Pool victim
	// caches left by a previous measurement) so Mallocs deltas compare
	// like with like across runs.
	goruntime.GC()
	goruntime.GC()
	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	stats, err := runtime.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	goruntime.ReadMemStats(&after)
	var p99 float64
	for r := 0; r < top.WorldSize(); r++ {
		h := reg.Histogram("lobster_runtime_stall_seconds",
			"Time each GPU spent waiting for its batch (data stall).",
			obs.LatencyBuckets(), "rank", strconv.Itoa(r))
		if q := h.Quantile(0.99); q > p99 {
			p99 = q
		}
	}
	return stats, p99 * 1e3, after.Mallocs - before.Mallocs
}

// benchRuntimePath measures one path at one rank count. Steady-state
// allocations per sample come from differencing a short and a long run:
// the fixed setup cost (plans, caches, pools, instruments) cancels and
// only the per-sample slope remains.
func benchRuntimePath(t *testing.T, ds *dataset.Dataset, nodes, gpus, shortE, longE int, perSample bool) runtimePathMetrics {
	t.Helper()
	_, _, mallocsShort := benchRuntimeRun(t, ds, nodes, gpus, shortE, perSample)
	shortStats, _, mallocsShort2 := benchRuntimeRun(t, ds, nodes, gpus, shortE, perSample)
	if mallocsShort2 < mallocsShort {
		mallocsShort = mallocsShort2
	}
	longStats, p99ms, mallocsLong := benchRuntimeRun(t, ds, nodes, gpus, longE, perSample)
	dSamples := longStats.SamplesLoaded - shortStats.SamplesLoaded
	if dSamples == 0 {
		t.Fatalf("degenerate differencing: %d vs %d samples", longStats.SamplesLoaded, shortStats.SamplesLoaded)
	}
	allocs := float64(mallocsLong-mallocsShort) / float64(dSamples)
	if allocs < 0 {
		allocs = 0
	}
	return runtimePathMetrics{
		SamplesPerSec:   float64(longStats.SamplesLoaded) / longStats.WallTime.Seconds(),
		AllocsPerSample: allocs,
		StallP99Ms:      p99ms,
		WallSeconds:     longStats.WallTime.Seconds(),
		Samples:         longStats.SamplesLoaded,
	}
}

func benchRuntimeConfig(t *testing.T, ds *dataset.Dataset, nodes, gpus, shortE, longE int) runtimeConfigResult {
	t.Helper()
	// Per-sample first: it never returns tensors to the pools, so
	// measuring it before the batched path keeps it from consuming
	// buffers a batched run left behind.
	per := benchRuntimePath(t, ds, nodes, gpus, shortE, longE, true)
	bat := benchRuntimePath(t, ds, nodes, gpus, shortE, longE, false)
	c := runtimeConfigResult{
		Ranks:       nodes * gpus,
		Nodes:       nodes,
		GPUsPerNode: gpus,
		Epochs:      longE,
		BatchSize:   8,
		Samples:     ds.Len(),
		PerSample:   per,
		Batched:     bat,
		SpeedupPct:  (bat.SamplesPerSec - per.SamplesPerSec) / per.SamplesPerSec * 100,
	}
	// A perfectly allocation-free batched path would divide by zero;
	// floor the denominator at a tenth of an alloc per sample.
	den := bat.AllocsPerSample
	if den < 0.1 {
		den = 0.1
	}
	c.AllocReduction = per.AllocsPerSample / den
	t.Logf("ranks=%-3d per-sample: %8.0f samples/s %6.2f allocs/sample stall-p99 %6.2fms | batched: %8.0f samples/s %6.2f allocs/sample stall-p99 %6.2fms | %0.1fx fewer allocs, %+.1f%% samples/s",
		c.Ranks, per.SamplesPerSec, per.AllocsPerSample, per.StallP99Ms,
		bat.SamplesPerSec, bat.AllocsPerSample, bat.StallP99Ms,
		c.AllocReduction, c.SpeedupPct)
	return c
}

func benchRuntimeMeasure(t *testing.T, full bool) {
	numSamples := 1024
	scale := "tiny"
	if full {
		numSamples = 4096
		scale = "full"
	}
	ds, err := dataset.Generate(dataset.Spec{
		Name: "rtbench", NumSamples: numSamples, MeanSize: 8 << 10, SigmaLog: 0.3,
		MinSize: 1 << 10, Classes: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var configs []runtimeConfigResult
	if full {
		configs = append(configs,
			benchRuntimeConfig(t, ds, 1, 1, 1, 3),
			benchRuntimeConfig(t, ds, 2, 4, 1, 3),
			benchRuntimeConfig(t, ds, 8, 8, 1, 3),
		)
	} else {
		configs = append(configs,
			benchRuntimeConfig(t, ds, 1, 1, 1, 2),
			benchRuntimeConfig(t, ds, 2, 4, 1, 2),
		)
	}
	last := configs[len(configs)-1]
	// The tiny gate keeps a flake margin below the committed 2x bound;
	// in practice the ratio is far larger on both scales.
	bound := allocReductionBudget
	if !full {
		bound = 1.5
	}
	if last.AllocReduction < bound {
		t.Errorf("alloc reduction at %d ranks is %.2fx, want >= %.1fx", last.Ranks, last.AllocReduction, bound)
	}
	if !full {
		return
	}
	if last.SpeedupPct <= 0 {
		t.Errorf("64-rank samples/sec gain %.2f%% is not a win; box may be loaded — rerun", last.SpeedupPct)
	}

	var out runtimeBenchFile
	out.Generated = time.Now().UTC().Format(time.RFC3339)
	out.Scale = scale
	out.Note = fmt.Sprintf("each config runs the online runtime end to end (dataset %d samples, batch 8, "+
		"TimeScale 0.001, Lobster dynamic strategy) through the legacy per-sample path and the batched path; "+
		"allocs/sample is the Mallocs slope between a 1-epoch and a %d-epoch run (setup cost cancels); "+
		"stall p99 is the worst per-rank lobster_runtime_stall_seconds quantile", numSamples, last.Epochs)
	out.Env.GoVersion = goruntime.Version()
	out.Env.GOOS = goruntime.GOOS
	out.Env.GOARCH = goruntime.GOARCH
	out.Env.NumCPU = goruntime.NumCPU()
	out.Env.GOMAXPROCS = goruntime.GOMAXPROCS(0)
	out.Configs = configs
	out.Headline.AllocReduction64R = last.AllocReduction
	out.Headline.SpeedupPct64R = last.SpeedupPct

	root, err := simRepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "BENCH_runtime.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
