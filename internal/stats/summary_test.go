package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary()
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("empty summary not zeroed: %v", s)
	}
	if s.Percentile(50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestSummaryBasics(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("StdDev = %g, want 2", got)
	}
	if got := s.Min(); got != 2 {
		t.Fatalf("Min = %g, want 2", got)
	}
	if got := s.Max(); got != 9 {
		t.Fatalf("Max = %g, want 9", got)
	}
}

func TestSummaryPercentiles(t *testing.T) {
	s := NewSummary()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	// Percentiles must be monotone.
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v := s.Percentile(p)
		if v < prev {
			t.Fatalf("percentiles not monotone at p=%g: %g < %g", p, v, prev)
		}
		prev = v
	}
}

func TestSummaryAddAfterPercentile(t *testing.T) {
	s := NewSummary()
	s.Add(1)
	s.Add(3)
	_ = s.Median()
	s.Add(2) // must re-sort lazily
	if got := s.Median(); got != 2 {
		t.Fatalf("Median after post-percentile Add = %g, want 2", got)
	}
}

func TestSummaryCoefVar(t *testing.T) {
	s := NewSummary()
	for i := 0; i < 10; i++ {
		s.Add(5)
	}
	if got := s.CoefVar(); got != 0 {
		t.Fatalf("CoefVar of constant data = %g, want 0", got)
	}
}

func TestSummaryPropertyMeanBounds(t *testing.T) {
	f := func(vals []float64) bool {
		s := NewSummary()
		ok := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			s.Add(v)
			ok = true
		}
		if !ok {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-6*math.Abs(s.Min())-1e-9 && m <= s.Max()+1e-6*math.Abs(s.Max())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryValuesSorted(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{5, 1, 3} {
		s.Add(v)
	}
	vals := s.Values()
	if len(vals) != 3 || vals[0] != 1 || vals[1] != 3 || vals[2] != 5 {
		t.Fatalf("Values = %v, want [1 3 5]", vals)
	}
}
