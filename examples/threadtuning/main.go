// Threadtuning: run the REAL concurrent runtime (goroutine worker pools,
// throttled storage, channel-based distribution manager) and watch
// Lobster's flexible thread manager at work: every decoded tensor is
// verified end to end, and the final thread assignment shows preprocessing
// throttled to its peak-throughput size with the remaining threads spread
// over the per-GPU loading queues.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/runtime"
)

func main() {
	fmt.Println("online runtime, 2 nodes x 8 GPUs, Lobster strategy:")
	fmt.Println()
	cfg, err := core.NewConfig(core.Workload{
		Dataset:  "imagenet-1k",
		Scale:    "tiny",
		Model:    "resnet50",
		Nodes:    2,
		Epochs:   2,
		Strategy: "lobster",
	})
	if err != nil {
		log.Fatal(err)
	}
	// Expose live progress over HTTP while the run executes — the
	// observability surface a production deployment would scrape.
	mon, err := monitor.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()
	fmt.Printf("live metrics at http://%s/metrics.json\n\n", mon.Addr())

	stats, err := runtime.Run(runtime.Options{
		Topology:   cfg.Pipeline.Topology,
		Dataset:    cfg.Pipeline.Dataset,
		Model:      cfg.Pipeline.Model,
		Epochs:     cfg.Pipeline.Epochs,
		Seed:       cfg.Pipeline.Seed,
		Strategy:   cfg.Pipeline.Strategy,
		TimeScale:  0.002, // 500x faster than modeled time
		OnProgress: func(p runtime.Progress) { mon.Update(p) },
	})
	if err != nil {
		log.Fatal(err)
	}
	// One last scrape of the dashboard, as a monitoring client would see it.
	if resp, err := http.Get("http://" + mon.Addr() + "/metrics.json"); err == nil {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		_ = resp.Body.Close()
		fmt.Printf("final scrape (truncated):\n%s...\n\n", body)
	}
	fmt.Printf("iterations: %d   wall time: %v\n", stats.Iterations, stats.WallTime)
	fmt.Printf("samples loaded: %d, all verified: %v\n",
		stats.SamplesLoaded, stats.SamplesVerified == stats.SamplesLoaded)
	fmt.Printf("cache hit ratio: %.1f%%   remote hits: %d   PFS reads: %d   prefetched: %d\n",
		stats.HitRatio()*100, stats.RemoteHits, stats.PFSReads, stats.Prefetched)
	fmt.Println()
	for n := range stats.FinalPreprocThreads {
		fmt.Printf("node %d final threads: preprocessing=%d, loading per GPU=%v\n",
			n, stats.FinalPreprocThreads[n], stats.FinalLoadThreads[n])
	}
	fmt.Println()
	fmt.Println("The controller re-runs Algorithm 1 every iteration: preprocessing")
	fmt.Println("is held near its peak-throughput thread count (Observation 3) and")
	fmt.Println("loading threads follow each GPU queue's predicted demand.")
}
