package kvstore

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// Benchmark fixture: one shard preloaded with benchKeys values of
// benchValBytes each, far under capacity so no evictions perturb
// timing. Each protocol runs its natural connection shape: v1 blocks a
// connection per in-flight op, so it gets a pool of benchConnsV1; v2
// multiplexes, so it gets a single pipelined connection. That is the
// comparison the ISSUE asks for — one-op-per-round-trip vs pipelined —
// not a socket-count contest (v1 throughput is flat in pool size on
// this box; see BENCH_kv.json).
const (
	benchKeys     = 1024
	benchValBytes = 4 << 10
	benchConnsV1  = 4
	benchConnsV2  = 1
)

func newBenchServer() (*Server, error) {
	s, err := NewServer("127.0.0.1:0", 256<<20)
	if err != nil {
		return nil, err
	}
	seed, err := NewClientV2(s.Addr(), 1)
	if err != nil {
		s.Close()
		return nil, err
	}
	defer seed.Close()
	val := make([]byte, benchValBytes)
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < benchKeys; i++ {
		if err := seed.Put(benchKey(i), val); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

func benchServer(b *testing.B) *Server {
	b.Helper()
	s, err := newBenchServer()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func benchKey(i int) string { return fmt.Sprintf("sample/%d", i) }

// runClients spreads b.N ops over `clients` goroutines and reports the
// p99 per-op latency alongside the standard ns/op and allocation
// numbers. Latency slabs are allocated before the timer starts so they
// do not pollute B/op.
func runClients(b *testing.B, clients int, op func(g, i int) error) {
	b.Helper()
	b.ReportAllocs()
	var wg sync.WaitGroup
	per := b.N / clients
	errs := make(chan error, clients)
	lats := make([][]int64, clients)
	for g := range lats {
		n := per
		if g == 0 {
			n += b.N % clients
		}
		lats[g] = make([]int64, 0, n)
	}
	b.ResetTimer()
	for g := 0; g < clients; g++ {
		g := g
		n := per
		if g == 0 {
			n += b.N % clients
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				start := time.Now()
				err := op(g, i)
				lats[g] = append(lats[g], time.Since(start).Nanoseconds())
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		b.ReportMetric(float64(all[len(all)*99/100]), "p99-ns")
	}
}

type benchClient interface {
	Get(key string) ([]byte, bool, error)
	Put(key string, val []byte) error
	MultiGet(keys []string) ([][]byte, error)
	Close()
}

func benchDial(b *testing.B, s *Server, proto string) benchClient {
	b.Helper()
	switch proto {
	case "v1":
		c, err := NewClient(s.Addr(), benchConnsV1)
		if err != nil {
			b.Fatal(err)
		}
		return c
	default:
		c, err := NewClientV2(s.Addr(), benchConnsV2)
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
}

// BenchmarkKVGet measures single-key Get throughput for both protocols
// at 1–64 concurrent client goroutines over the same 4 connections.
// The v2/16-client case is the ISSUE-2 acceptance number: it must be
// >= 2x v1/16 on ops/sec.
func BenchmarkKVGet(b *testing.B) {
	s := benchServer(b)
	for _, proto := range []string{"v1", "v2"} {
		for _, clients := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("proto=%s/clients=%d", proto, clients), func(b *testing.B) {
				c := benchDial(b, s, proto)
				defer c.Close()
				runClients(b, clients, func(g, i int) error {
					_, found, err := c.Get(benchKey((g*7919 + i) % benchKeys))
					if err == nil && !found {
						err = fmt.Errorf("bench key missing")
					}
					return err
				})
			})
		}
	}
}

// BenchmarkKVMultiGet measures fetching a 32-key prefetch window:
// one MultiGet round trip (v2) vs 32 sequential Gets (v1's only
// option). Reported per window.
func BenchmarkKVMultiGet(b *testing.B) {
	const window = 32
	s := benchServer(b)
	keys := make([]string, window)
	for k := range keys {
		keys[k] = benchKey(k * 31 % benchKeys)
	}
	for _, clients := range []int{1, 16} {
		b.Run(fmt.Sprintf("proto=v1-loop/clients=%d", clients), func(b *testing.B) {
			c := benchDial(b, s, "v1")
			defer c.Close()
			runClients(b, clients, func(g, i int) error {
				for _, key := range keys {
					if _, _, err := c.Get(key); err != nil {
						return err
					}
				}
				return nil
			})
		})
		b.Run(fmt.Sprintf("proto=v2-batch/clients=%d", clients), func(b *testing.B) {
			c := benchDial(b, s, "v2")
			defer c.Close()
			runClients(b, clients, func(g, i int) error {
				_, err := c.MultiGet(keys)
				return err
			})
		})
	}
}

// BenchmarkKVPut measures write throughput at 16 clients.
func BenchmarkKVPut(b *testing.B) {
	s := benchServer(b)
	val := make([]byte, benchValBytes)
	for _, proto := range []string{"v1", "v2"} {
		b.Run(fmt.Sprintf("proto=%s/clients=16", proto), func(b *testing.B) {
			c := benchDial(b, s, proto)
			defer c.Close()
			runClients(b, 16, func(g, i int) error {
				return c.Put(benchKey((g*7919+i)%benchKeys), val)
			})
		})
	}
}
