package preproc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/stats"
)

// PayloadOwner is implemented by payload lessors (the runtime's node
// cache): a worker calls ReleasePayload exactly once per leased job,
// after decode, to tell the owner the data path no longer reads the
// buffer. The owner may then recycle it — immediately if it was evicted
// in the meantime, or whenever it eventually is (DESIGN.md §12).
type PayloadOwner interface {
	ReleasePayload(p []byte)
}

// Job is one preprocessing work item: a raw payload to decode and augment.
type Job struct {
	ID      dataset.SampleID
	Payload []byte
	Seed    uint64
	// Done receives the result exactly once (per-sample delivery; used
	// when Comp is nil).
	Done chan<- Result
	// Comp, when non-nil, selects batched delivery: the worker writes
	// the Result into Comp's slot Slot instead of sending on Done, and
	// the batch's consumer is woken once, by the last slot (see
	// Completion).
	Comp *Completion
	Slot int
	// Owned marks Payload as exclusively owned by the data path: no
	// cache retains it and no peer can still read it, so the worker
	// recycles it into the payload pool after decoding (DESIGN.md §12
	// ownership rules).
	Owned bool
	// Owner, when non-nil, marks Payload as leased from a cache that
	// still retains it: the worker must not recycle it, but releases the
	// lease after decode so the owner can recycle it upon eviction.
	// Mutually exclusive with Owned.
	Owner PayloadOwner
	// Ctx attributes the job to the (rank, epoch, iter) that will
	// consume its tensor; the zero value means unattributed. Stamped on
	// the job's trace span and handed to Instruments.QueueWait.
	Ctx obs.TraceCtx
	// EnqueuedAt, when non-zero, timestamps the job's submission so the
	// worker can report how long it sat queued (Instruments.QueueWait).
	// Callers set it only while attribution is being recorded, keeping
	// the disabled path free of clock reads.
	EnqueuedAt time.Time
}

// jobBlockCap is how many jobs one internal queue slot carries.
// SubmitBatch packs jobs into blocks of this size, cutting channel
// operations per batch by the same factor while keeping blocks small
// enough that a batch still spreads across workers.
const jobBlockCap = 4

// jobBlock is one message on the pool's queue: up to jobBlockCap jobs,
// inlined so SubmitBatch can hand a caller's scratch slice to the pool
// by value — the caller may reuse its slice the moment SubmitBatch
// returns, with no per-block heap allocation.
type jobBlock struct {
	n    int
	jobs [jobBlockCap]Job
}

// Result is the outcome of a Job.
type Result struct {
	Tensor *Tensor
	Err    error
}

// Pool is a resizable preprocessing worker pool. Lobster's thread manager
// grows and shrinks it at runtime ("take away one thread from the
// preprocessing stage and make it available for data loading",
// Section 4.1); Resize is safe to call concurrently with Submit.
type Pool struct {
	jobs chan jobBlock

	mu      sync.Mutex
	target  int           // desired worker count
	workers int           // current worker count
	stops   chan struct{} // one token per worker asked to exit
	closed  bool

	// stopDebt holds stop requests that did not fit in the stops
	// channel (a Resize storm can outrun token delivery). Workers claim
	// debt at the top of their loop, so a full channel stalls nobody:
	// Resize records the overflow and returns. See Resize.
	stopDebt atomic.Int64

	processed atomic.Uint64
	wg        sync.WaitGroup

	// ins is the optional live instrumentation (SetInstruments); an
	// atomic pointer so attaching mid-run cannot race the workers. The
	// nil fast path costs one pointer load per job.
	ins atomic.Pointer[Instruments]
	// fault is the injected per-job decode delay (SetDecodeDelay; nil =
	// none) — the slow-decode-worker fault of the chaos harness.
	fault atomic.Pointer[decodeFault]
	// tidFree recycles trace thread IDs across worker generations so a
	// thread-controller resizing every iteration does not mint
	// unbounded trace tracks.
	tidMu   sync.Mutex
	tidFree []int64
	tidSeq  int
}

// Instruments is the pool's optional observability hookup. JobSeconds
// gets one observation per preprocessing job; Trace (with TraceLabel as
// the track-name prefix) gets one "preproc" span per job on a
// per-worker track. Attach with SetInstruments before or during a run.
type Instruments struct {
	JobSeconds *obs.Histogram
	Trace      *obs.TraceRing
	TraceLabel string
	// QueueWait, when non-nil, receives each job's queue wait — worker
	// pickup minus Job.EnqueuedAt — with the job's trace context. The
	// runtime feeds it into the stall ledger as the decode-wait cause.
	// Jobs without an EnqueuedAt stamp are skipped.
	QueueWait func(ctx obs.TraceCtx, wait time.Duration)
}

// active reports whether recording would do anything right now — the
// pre-check that keeps the disabled path free of clock reads.
func (ins *Instruments) active() bool {
	return ins != nil && (ins.Trace != nil || ins.JobSeconds.On())
}

// SetInstruments attaches (or replaces, or with nil detaches) the
// pool's instrumentation. Safe to call concurrently with Submit.
func (p *Pool) SetInstruments(ins *Instruments) { p.ins.Store(ins) }

// takeTID leases a trace track for one worker, reusing returned IDs
// before minting new ones.
func (p *Pool) takeTID(ins *Instruments) int64 {
	p.tidMu.Lock()
	if n := len(p.tidFree); n > 0 {
		tid := p.tidFree[n-1]
		p.tidFree = p.tidFree[:n-1]
		p.tidMu.Unlock()
		return tid
	}
	p.tidSeq++
	seq := p.tidSeq
	p.tidMu.Unlock()
	return ins.Trace.NewThread(fmt.Sprintf("%s/worker%d", ins.TraceLabel, seq))
}

func (p *Pool) putTID(tid int64) {
	if tid == 0 {
		return
	}
	p.tidMu.Lock()
	p.tidFree = append(p.tidFree, tid)
	p.tidMu.Unlock()
}

// QueueLen returns the number of jobs waiting in the queue (for
// scrape-time gauge callbacks).
func (p *Pool) QueueLen() int { return len(p.jobs) }

// poolStopsCap bounds the stop-token channel. Overflow past it goes to
// stopDebt, so the bound affects only how promptly *idle* workers learn
// about a shrink — never whether Resize can block (it cannot).
const poolStopsCap = 1024

// NewPool starts a pool with the given number of workers.
func NewPool(workers, queueDepth int) (*Pool, error) {
	return newPool(workers, queueDepth, poolStopsCap)
}

// newPool is NewPool with the stop-token capacity exposed so tests can
// force the overflow path without thousands of workers.
func newPool(workers, queueDepth, stopsCap int) (*Pool, error) {
	if workers < 1 {
		return nil, fmt.Errorf("preproc: workers %d < 1", workers)
	}
	if queueDepth < 1 {
		return nil, fmt.Errorf("preproc: queueDepth %d < 1", queueDepth)
	}
	p := &Pool{
		jobs:  make(chan jobBlock, queueDepth),
		stops: make(chan struct{}, stopsCap),
	}
	p.mu.Lock()
	p.target = workers
	for i := 0; i < workers; i++ {
		p.spawn()
	}
	p.mu.Unlock()
	return p, nil
}

func (p *Pool) spawn() {
	p.workers++
	p.wg.Add(1)
	go p.worker()
}

// claimStopDebt consumes one overflowed stop request, if any. Called by
// workers at the top of their loop, so debt drains as jobs flow.
func (p *Pool) claimStopDebt() bool {
	for {
		d := p.stopDebt.Load()
		if d <= 0 {
			return false
		}
		if p.stopDebt.CompareAndSwap(d, d-1) {
			return true
		}
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	var tid int64
	defer func() { p.putTID(tid) }()
	for {
		if p.claimStopDebt() {
			return
		}
		select {
		case <-p.stops:
			return
		case blk, ok := <-p.jobs:
			if !ok {
				return
			}
			ins := p.ins.Load()
			if tid == 0 && ins != nil && ins.Trace != nil {
				tid = p.takeTID(ins)
			}
			for i := 0; i < blk.n; i++ {
				p.run(blk.jobs[i], ins, tid)
			}
		}
	}
}

// decodeFault is the injected per-job decode delay: a fixed lag plus a
// uniform jitter in [0, jitter) drawn from a seeded RNG, so chaos runs
// replay identically. Installed whole-sale behind an atomic pointer;
// the healthy fast path costs one pointer load per job.
type decodeFault struct {
	lag, jitter time.Duration
	mu          sync.Mutex
	rng         *stats.RNG
}

func (f *decodeFault) sleep() {
	d := f.lag
	if f.jitter > 0 {
		f.mu.Lock()
		d += time.Duration(f.rng.Int63() % int64(f.jitter))
		f.mu.Unlock()
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// SetDecodeDelay injects an artificial per-job decode delay: lag fixed,
// plus a uniform draw in [0, jitter) from an RNG seeded with seed (0
// picks a fixed default, so even unseeded delays are deterministic).
// Zero lag and jitter clear the fault. Safe to call while jobs flow —
// this is the slow-decode-worker hook of the chaos harness.
func (p *Pool) SetDecodeDelay(lag, jitter time.Duration, seed uint64) {
	if lag <= 0 && jitter <= 0 {
		p.fault.Store(nil)
		return
	}
	if seed == 0 {
		seed = 0xdec0de
	}
	p.fault.Store(&decodeFault{lag: lag, jitter: jitter, rng: stats.NewRNG(seed)})
}

func (p *Pool) run(job Job, ins *Instruments, tid int64) {
	var start time.Time
	rec := ins.active()
	if rec {
		start = time.Now()
		if ins.QueueWait != nil && !job.EnqueuedAt.IsZero() {
			ins.QueueWait(job.Ctx, start.Sub(job.EnqueuedAt))
		}
	}
	if f := p.fault.Load(); f != nil {
		f.sleep()
	}
	t, err := Decode(job.Payload, job.ID)
	if err == nil {
		Augment(t, job.Seed)
	}
	// Decode copied the bytes out; the data path's read of the payload
	// ends here. Owned buffers are recycled on the spot; leased ones are
	// handed back to their owner, which recycles them at eviction time.
	if job.Owner != nil {
		job.Owner.ReleasePayload(job.Payload)
	} else if job.Owned {
		PutPayloadBuf(job.Payload)
	}
	p.processed.Add(1)
	if rec {
		d := time.Since(start)
		ins.JobSeconds.Observe(d.Seconds())
		if ins.Trace != nil && tid != 0 {
			if job.Ctx.Valid() {
				ins.Trace.SpanArgs("preproc", "cpu", tid, start, d,
					"rank", int64(job.Ctx.Rank()), "iter", job.Ctx.Iter())
			} else {
				ins.Trace.Span("preproc", "cpu", tid, start, d)
			}
		}
	}
	if job.Comp != nil {
		job.Comp.complete(job.Slot, Result{Tensor: t, Err: err})
		return
	}
	job.Done <- Result{Tensor: t, Err: err}
}

// Submit enqueues a job, blocking if the queue is full. Submitting to a
// closed pool panics (it is a caller sequencing bug).
func (p *Pool) Submit(job Job) {
	var b jobBlock
	b.n = 1
	b.jobs[0] = job
	p.jobs <- b
}

// SubmitBatch enqueues a slice of jobs in blocks of up to jobBlockCap —
// one channel send per block instead of one per job. Jobs are copied
// into the queue, so the caller may reuse its slice the moment
// SubmitBatch returns. Blocking and close semantics match Submit.
//
//lint:hotpath one call per loaded chunk on the batched data path; BENCH_runtime.json pins 0 allocs/op
func (p *Pool) SubmitBatch(jobs []Job) {
	for len(jobs) > 0 {
		var b jobBlock
		b.n = copy(b.jobs[:], jobs)
		jobs = jobs[b.n:]
		p.jobs <- b
	}
}

// Resize sets the desired worker count. Shrinking takes effect as workers
// finish their current job.
func (p *Pool) Resize(n int) error {
	if n < 1 {
		return fmt.Errorf("preproc: Resize to %d < 1", n)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("preproc: Resize after Close")
	}
	for p.target < n {
		p.target++
		// A pending stop cancels against a spawn: claiming the debt
		// keeps an already-running worker alive instead of starting a
		// goroutine whose sibling is about to retire.
		if p.claimStopDebt() {
			p.workers++
			continue
		}
		p.spawn()
	}
	shrink := 0
	for p.target > n {
		p.target--
		p.workers--
		shrink++
	}
	p.mu.Unlock()
	// Deliver stop tokens after releasing the lock, and never block on
	// them: overflow past the channel bound becomes debt that workers
	// claim at the top of their loop, so a resize storm stalls nobody.
	for ; shrink > 0; shrink-- {
		select {
		case p.stops <- struct{}{}:
		default:
			p.stopDebt.Add(1)
		}
	}
	return nil
}

// Workers returns the current desired worker count.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// Processed returns the number of jobs completed.
func (p *Pool) Processed() uint64 { return p.processed.Load() }

// Close drains the pool: no further Submits are allowed; it blocks until
// all workers exit.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
