// Package tier models the three-level storage hierarchy of Section 2
// (Figure 2): node-local memory cache, remote (peer) node caches, and the
// parallel file system — each with a throughput curve as a function of the
// number of concurrent I/O threads, exactly the T_l(α), T_r(β), T_PFS(γ)
// terms of the paper's performance model (Table 1, Equation 1).
//
// The curves are saturating: adding threads raises aggregate throughput
// with diminishing returns up to a peak. The PFS tier additionally has a
// global capacity shared by all compute nodes (reason (2) in Section 2 for
// why distributed caching helps: "the aggregated I/O bandwidth of the PFS
// is limited and becomes a bottleneck when multiple compute nodes compete
// for it") and a large per-operation latency (reason (3): the PFS "is not
// optimized for ... small randomly scattered reads").
package tier

import "fmt"

// Kind identifies a storage tier.
type Kind int

const (
	// Local is the node-local in-memory cache.
	Local Kind = iota
	// Remote is a peer node's cache reached over the interconnect.
	Remote
	// PFS is the parallel file system.
	PFS
	numKinds
)

// String returns the tier name.
func (k Kind) String() string {
	switch k {
	case Local:
		return "local"
	case Remote:
		return "remote"
	case PFS:
		return "pfs"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all tiers from fastest to slowest.
func Kinds() []Kind { return []Kind{Local, Remote, PFS} }

// Curve is a saturating aggregate-throughput model:
//
//	aggregate(n) = PeakMBps * n / (n + HalfThreads)
//
// so one thread achieves Peak/(1+Half) and throughput approaches PeakMBps
// as n grows. OpLatency is the fixed per-request cost (seek/RPC/syscall),
// paid once per sample read.
type Curve struct {
	PeakMBps    float64 // asymptotic aggregate throughput, MB/s
	HalfThreads float64 // threads at which half the peak is reached
	OpLatency   float64 // seconds per operation (per sample read)
}

// Validate reports whether the curve is physically sensible.
func (c Curve) Validate() error {
	if c.PeakMBps <= 0 {
		return fmt.Errorf("tier: PeakMBps %g <= 0", c.PeakMBps)
	}
	if c.HalfThreads <= 0 {
		return fmt.Errorf("tier: HalfThreads %g <= 0", c.HalfThreads)
	}
	if c.OpLatency < 0 {
		return fmt.Errorf("tier: OpLatency %g < 0", c.OpLatency)
	}
	return nil
}

// Aggregate returns total MB/s delivered with n concurrent threads.
func (c Curve) Aggregate(n int) float64 {
	if n <= 0 {
		return 0
	}
	t := float64(n)
	return c.PeakMBps * t / (t + c.HalfThreads)
}

// PerThread returns the MB/s a single thread sees when n run concurrently.
func (c Curve) PerThread(n int) float64 {
	if n <= 0 {
		return 0
	}
	return c.Aggregate(n) / float64(n)
}

// ReadTime returns the seconds needed to read `ops` operations totalling
// `bytes` with n concurrent threads: per-op latency is paid in parallel
// across threads; the transfer shares the aggregate bandwidth.
func (c Curve) ReadTime(bytes int64, ops, n int) float64 {
	if n <= 0 || bytes < 0 || ops < 0 {
		return 0
	}
	if bytes == 0 && ops == 0 {
		return 0
	}
	latency := c.OpLatency * float64(ops) / float64(n)
	transfer := float64(bytes) / (c.Aggregate(n) * 1e6)
	return latency + transfer
}

// Hierarchy bundles the three tier curves plus the global PFS capacity.
type Hierarchy struct {
	Local  Curve
	Remote Curve
	PFS    Curve
	// PFSGlobalMBps caps the sum of PFS throughput across all nodes. When
	// k nodes read concurrently, each sees min(Aggregate, Global/k).
	PFSGlobalMBps float64
}

// Validate checks all curves.
func (h Hierarchy) Validate() error {
	for _, c := range []struct {
		name  string
		curve Curve
	}{{"local", h.Local}, {"remote", h.Remote}, {"pfs", h.PFS}} {
		if err := c.curve.Validate(); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
	}
	if h.PFSGlobalMBps <= 0 {
		return fmt.Errorf("tier: PFSGlobalMBps %g <= 0", h.PFSGlobalMBps)
	}
	return nil
}

// CurveOf returns the curve for a tier kind.
func (h Hierarchy) CurveOf(k Kind) Curve {
	switch k {
	case Local:
		return h.Local
	case Remote:
		return h.Remote
	case PFS:
		return h.PFS
	default:
		panic(fmt.Sprintf("tier: unknown kind %d", int(k)))
	}
}

// PFSLatencyContention is the per-extra-node inflation of the PFS
// per-operation latency: metadata servers and OSTs queue small random
// reads from concurrent clients, so each additional active node raises
// every node's op latency by this fraction.
const PFSLatencyContention = 0.10

// PFSNodeCurve returns the effective PFS curve seen by one node when
// `activeNodes` nodes are reading from the PFS concurrently: the node-local
// saturating curve clipped by its share of the global capacity, with op
// latency inflated by client contention.
func (h Hierarchy) PFSNodeCurve(activeNodes int) Curve {
	if activeNodes < 1 {
		activeNodes = 1
	}
	c := h.PFS
	share := h.PFSGlobalMBps / float64(activeNodes)
	if share < c.PeakMBps {
		c.PeakMBps = share
	}
	c.OpLatency *= 1 + PFSLatencyContention*float64(activeNodes-1)
	return c
}

// ReadTime computes the time to read ops operations totalling bytes from
// tier k with n threads, with activeNodes nodes sharing the PFS.
func (h Hierarchy) ReadTime(k Kind, bytes int64, ops, n, activeNodes int) float64 {
	if k == PFS {
		return h.PFSNodeCurve(activeNodes).ReadTime(bytes, ops, n)
	}
	return h.CurveOf(k).ReadTime(bytes, ops, n)
}

// ThetaGPULike returns a hierarchy calibrated to the paper's testbed
// (Section 5.1): DGX A100 nodes with DDR4 caches, HDR200 interconnect, and
// a Lustre PFS whose small-random-read performance — not its 250 GB/s
// streaming aggregate — governs sample loading. The absolute values are
// order-of-magnitude calibrations; the experiments depend on the ratios
// (local ≫ remote ≫ PFS, per Observation 2: remote I/O is "orders of
// magnitude slower than local I/O").
func ThetaGPULike() Hierarchy {
	return Hierarchy{
		Local: Curve{
			PeakMBps:    20000, // DDR4 copy bandwidth available to readers
			HalfThreads: 1.5,
			OpLatency:   2e-6,
		},
		Remote: Curve{
			PeakMBps:    5000, // HDR200 through the cache service
			HalfThreads: 2,
			OpLatency:   150e-6,
		},
		PFS: Curve{
			PeakMBps:    1500, // per-node small-random-read ceiling
			HalfThreads: 4,
			OpLatency:   4e-3, // metadata + seek per sample
		},
		PFSGlobalMBps: 8000, // cluster-wide small-read capacity
	}
}
