package lint

import (
	"strings"
)

// allowDirective is the escape hatch:
//
//	//lint:allow <check-id> <justification>
//
// It suppresses findings of <check-id> on the directive's own line and
// on the line directly below (so it works both as an end-of-line comment
// and as a comment above the offending statement). The justification is
// mandatory: an exception whose reason nobody wrote down is a bug
// waiting to be re-discovered.
const allowPrefix = "//lint:allow"

// allowSet maps filename -> line -> set of allowed check IDs.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) permits(f Finding) bool {
	lines := s[f.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[f.Pos.Line][f.Check]
}

// collectAllows scans every comment in the package for allow directives.
// It returns the resulting suppression set plus findings for malformed
// directives (missing check ID or justification).
func collectAllows(p *Package) (allowSet, []Finding) {
	set := allowSet{}
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, isAllow := strings.CutPrefix(c.Text, allowPrefix)
				if !isAllow || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				rest = strings.TrimSpace(rest)
				id, why, _ := strings.Cut(rest, " ")
				if id == "" {
					bad = append(bad, p.finding("directive", c, "lint:allow directive names no check ID"))
					continue
				}
				if strings.TrimSpace(why) == "" {
					bad = append(bad, p.finding("directive",
						c, "lint:allow %s has no justification; write why the exception is safe", id))
					continue
				}
				pos := p.position(c)
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					ids := lines[line]
					if ids == nil {
						ids = map[string]bool{}
						lines[line] = ids
					}
					ids[id] = true
				}
			}
		}
	}
	return set, bad
}
