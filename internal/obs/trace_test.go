package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTraceRingBasics records a span and an instant and checks both the
// programmatic snapshot and the ring's bookkeeping.
func TestTraceRingBasics(t *testing.T) {
	tr := NewTraceRing(64)
	tid := tr.NewThread("worker0")
	if tid == 0 {
		t.Fatal("NewThread returned 0")
	}
	if got := tr.ThreadName(tid); got != "worker0" {
		t.Fatalf("ThreadName = %q, want worker0", got)
	}
	start := time.Now()
	tr.SpanArgs("load", "io", tid, start, 5*time.Millisecond, "sample", 42, "", 0)
	tr.Instant("resize", "ctrl", tid, "preproc", 3, "load_total", 9)
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	span := events[0]
	if span.Ph != 'X' || span.Name != "load" || span.Arg1 != 42 {
		t.Fatalf("unexpected span event %+v", span)
	}
	if span.DurNs != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("span duration %d, want 5ms", span.DurNs)
	}
	if inst := events[1]; inst.Ph != 'i' || inst.Arg2 != 9 {
		t.Fatalf("unexpected instant event %+v", inst)
	}
}

// TestTraceRingNil checks every method is a no-op on a nil ring.
func TestTraceRingNil(t *testing.T) {
	var tr *TraceRing
	if tid := tr.NewThread("x"); tid != 0 {
		t.Fatalf("nil NewThread = %d, want 0", tid)
	}
	tr.Span("a", "b", 1, time.Now(), time.Millisecond)
	tr.Instant("a", "b", 1, "", 0, "", 0)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil ring must be empty")
	}
	if err := tr.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("nil WriteJSON must error")
	}
}

// TestTraceRingWraps checks the ring keeps only the most recent spans.
func TestTraceRingWraps(t *testing.T) {
	tr := NewTraceRing(64)
	tid := tr.NewThread("w")
	start := time.Now()
	for i := 0; i < 200; i++ {
		tr.SpanArgs("s", "c", tid, start.Add(time.Duration(i)*time.Microsecond), time.Microsecond,
			"i", int64(i), "", 0)
	}
	events := tr.Events()
	if len(events) != 64 {
		t.Fatalf("got %d events after wrap, want 64", len(events))
	}
	for _, e := range events {
		if e.Arg1 < 200-64 {
			t.Fatalf("ring kept stale span %d after wrap", e.Arg1)
		}
	}
}

// chromeTrace mirrors the trace-event JSON for decoding in tests.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Tid  int64          `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTraceWriteJSON checks the exported file parses and carries the
// metadata plus span/instant phases Perfetto expects.
func TestTraceWriteJSON(t *testing.T) {
	tr := NewTraceRing(64)
	tid := tr.NewThread("node0/gpu0/loader1")
	tr.Span("load", "io", tid, time.Now(), 3*time.Millisecond)
	tr.Instant("thread_resize", "ctrl", tid, "preproc", 2, "", 0)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	var haveProc, haveThread, haveSpan, haveInstant bool
	for _, e := range out.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			haveProc = true
		case e.Ph == "M" && e.Name == "thread_name":
			haveThread = e.Args["name"] == "node0/gpu0/loader1"
		case e.Ph == "X" && e.Name == "load":
			haveSpan = true
			if e.Dur < 2900 || e.Dur > 3100 {
				t.Fatalf("span dur %v µs, want ~3000", e.Dur)
			}
		case e.Ph == "i" && e.Name == "thread_resize":
			haveInstant = e.S == "t" && e.Args["preproc"] == float64(2)
		}
	}
	if !haveProc || !haveThread || !haveSpan || !haveInstant {
		t.Fatalf("trace missing required events: proc=%v thread=%v span=%v instant=%v\n%s",
			haveProc, haveThread, haveSpan, haveInstant, buf.String())
	}
}

// TestTraceRingConcurrentScrape publishes spans from 32 goroutines
// while the ring is concurrently dumped — the -race proof that live
// scrapes never tear recording.
func TestTraceRingConcurrentScrape(t *testing.T) {
	tr := NewTraceRing(256)
	const writers, spansEach = 32, 200
	var wg sync.WaitGroup
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			var buf bytes.Buffer
			if err := tr.WriteJSON(&buf); err != nil {
				t.Error(err)
				return
			}
			var out chromeTrace
			if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
				t.Errorf("mid-run scrape does not parse: %v", err)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := tr.NewThread(fmt.Sprintf("writer%d", w))
			for i := 0; i < spansEach; i++ {
				tr.SpanArgs("op", "test", tid, time.Now(), time.Microsecond,
					"i", int64(i), "", 0)
			}
		}(w)
	}
	wg.Wait()
	close(stopScrape)
	scrapeWG.Wait()
	if tr.Len() != 256 {
		t.Fatalf("ring holds %d events, want full 256", tr.Len())
	}
}
