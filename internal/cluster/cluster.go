// Package cluster describes the training platform: node/GPU topology, CPU
// thread budgets, cache sizes, and the DNN models whose training-stage
// durations anchor the pipeline simulation.
//
// The reference platform is the paper's testbed (Section 5.1): ThetaGPU,
// 24 DGX A100 nodes with 8 GPUs each, 1 TB DDR4 of which 40 GB serves as
// the node-local sample cache, and a Lustre PFS.
package cluster

import (
	"fmt"

	"repro/internal/tier"
)

// Topology is the shape of one training run's resources.
type Topology struct {
	Nodes       int
	GPUsPerNode int
	// CPUThreads is the per-node CPU thread budget shared by the data
	// loading and preprocessing stages (the resource Lobster's thread
	// manager arbitrates).
	CPUThreads int
	// CacheBytes is the node-local sample cache capacity (40 GB on the
	// paper's testbed; scaled proportionally in reduced-scale runs).
	CacheBytes int64
	// NUMADomains is the number of CPU sockets per node (2 on the DGX
	// A100's dual AMD Rome). Thread placement across them is what the
	// paper's "Lobster is NUMA-aware" claim is about (Section 5.2).
	NUMADomains int
	// Hierarchy is the storage hierarchy reachable from each node.
	Hierarchy tier.Hierarchy
}

// Validate reports whether the topology is usable.
func (t Topology) Validate() error {
	if t.Nodes < 1 {
		return fmt.Errorf("cluster: Nodes %d < 1", t.Nodes)
	}
	if t.GPUsPerNode < 1 {
		return fmt.Errorf("cluster: GPUsPerNode %d < 1", t.GPUsPerNode)
	}
	if t.CPUThreads < 2 {
		return fmt.Errorf("cluster: CPUThreads %d < 2 (need at least 1 loading + 1 preprocessing)", t.CPUThreads)
	}
	if t.CacheBytes <= 0 {
		return fmt.Errorf("cluster: CacheBytes %d <= 0", t.CacheBytes)
	}
	if t.NUMADomains < 1 {
		return fmt.Errorf("cluster: NUMADomains %d < 1", t.NUMADomains)
	}
	return t.Hierarchy.Validate()
}

// WorldSize returns the total GPU count.
func (t Topology) WorldSize() int { return t.Nodes * t.GPUsPerNode }

// ThetaGPULike returns the paper's platform shape with the given node
// count and cache size. GPUsPerNode is 8 and the per-node pipeline thread
// budget is 24 (three CPU threads per GPU available to the loading +
// preprocessing stages, matching the order of what DALI/PyTorch configure
// per process on DGX boxes).
func ThetaGPULike(nodes int, cacheBytes int64) Topology {
	return Topology{
		Nodes:       nodes,
		GPUsPerNode: 8,
		CPUThreads:  24,
		CacheBytes:  cacheBytes,
		NUMADomains: 2,
		Hierarchy:   tier.ThetaGPULike(),
	}
}

// DNNModel carries what the pipeline simulation needs to know about a
// network: how long one training iteration takes on an A100 (the paper
// treats T_train as constant per model, Section 4.3) and the convergence
// anchors used by the Fig. 9 accuracy reproduction.
type DNNModel struct {
	Name string
	// IterTime is seconds per training iteration (forward+backward+
	// optimizer) at the reference per-GPU batch size.
	IterTime float64
	// BatchSize is the per-GPU mini-batch size the iteration time is
	// calibrated for (the paper's epoch arithmetic implies 32; see
	// EXPERIMENTS.md).
	BatchSize int
	// TargetAccuracy and ConvergeEpochs anchor the accuracy-curve model:
	// top-1 accuracy approached, and the epoch count at which the paper's
	// training reached it (Fig. 9: 76.0% at ~40 epochs for ResNet50).
	TargetAccuracy float64
	ConvergeEpochs int
}

// Models returns the six benchmark DNNs of Section 5.1. Iteration times
// are relative calibrations for A100 at batch 32: the large models
// (ResNet50, VGG11) give the pipeline more room to hide I/O; the small
// ones (ShuffleNet, SqueezeNet, ResNet32) make data loading dominant —
// which is why the paper's Fig. 11 finds the eviction policy helps small
// models more.
func Models() []DNNModel {
	return []DNNModel{
		{Name: "resnet50", IterTime: 0.050, BatchSize: 32, TargetAccuracy: 0.760, ConvergeEpochs: 40},
		{Name: "resnet32", IterTime: 0.012, BatchSize: 32, TargetAccuracy: 0.700, ConvergeEpochs: 35},
		{Name: "shufflenet", IterTime: 0.015, BatchSize: 32, TargetAccuracy: 0.694, ConvergeEpochs: 38},
		{Name: "alexnet", IterTime: 0.018, BatchSize: 32, TargetAccuracy: 0.572, ConvergeEpochs: 30},
		{Name: "squeezenet", IterTime: 0.014, BatchSize: 32, TargetAccuracy: 0.575, ConvergeEpochs: 32},
		{Name: "vgg11", IterTime: 0.070, BatchSize: 32, TargetAccuracy: 0.690, ConvergeEpochs: 35},
	}
}

// ModelByName finds a benchmark model.
func ModelByName(name string) (DNNModel, error) {
	for _, m := range Models() {
		if m.Name == name {
			return m, nil
		}
	}
	return DNNModel{}, fmt.Errorf("cluster: unknown model %q", name)
}

// AllreduceTime estimates the gradient-averaging cost per iteration for a
// given world size: a logarithmic ring/tree term on top of a fixed launch
// cost. Small relative to IterTime — the paper's bottleneck analysis
// attributes straggling to data loading, not communication — but nonzero
// so that multi-node runs pay a synchronization price.
func AllreduceTime(worldSize int) float64 {
	if worldSize <= 1 {
		return 0
	}
	base := 0.0015 // launch + intra-node reduction
	steps := 0
	for w := 1; w < worldSize; w *= 2 {
		steps++
	}
	return base + 0.0004*float64(steps)
}
