// Package perfmodel implements the paper's holistic performance model
// (Section 4.3): the Equation 1 data-loading time model over the three-tier
// storage hierarchy, the piecewise-linear preprocessing model portfolio of
// Section 4.1, and the Equation 2 straggler predictor that bridges thread
// management with distributed caching.
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/stats"
	"repro/internal/tier"
)

// BatchPlacement describes where the samples of one mini-batch currently
// live: B_HL (local hits), B_HR (remote hits), B_M (misses to the PFS) of
// Section 4.3, as byte totals and operation counts.
type BatchPlacement struct {
	LocalBytes  int64
	RemoteBytes int64
	PFSBytes    int64
	LocalOps    int
	RemoteOps   int
	PFSOps      int
}

// TotalBytes returns the mini-batch's total size.
func (b BatchPlacement) TotalBytes() int64 { return b.LocalBytes + b.RemoteBytes + b.PFSBytes }

// TotalOps returns the number of samples in the mini-batch.
func (b BatchPlacement) TotalOps() int { return b.LocalOps + b.RemoteOps + b.PFSOps }

// Add accumulates another placement (e.g. to aggregate a node's GPUs).
func (b *BatchPlacement) Add(o BatchPlacement) {
	b.LocalBytes += o.LocalBytes
	b.RemoteBytes += o.RemoteBytes
	b.PFSBytes += o.PFSBytes
	b.LocalOps += o.LocalOps
	b.RemoteOps += o.RemoteOps
	b.PFSOps += o.PFSOps
}

// ThreadAlloc is the per-tier thread split (α, β, γ) for one GPU's loading.
type ThreadAlloc struct {
	Local  int // α
	Remote int // β
	PFS    int // γ
}

// Total returns α+β+γ.
func (a ThreadAlloc) Total() int { return a.Local + a.Remote + a.PFS }

// SplitThreads divides n loading threads across the tiers proportionally
// to each tier's predicted share of the load time (latency-weighted bytes),
// guaranteeing at least one thread to every tier with work. It is how a
// per-GPU thread budget from Algorithm 1 becomes the (α, β, γ) of
// Equation 1.
func SplitThreads(h tier.Hierarchy, pl BatchPlacement, n int, activeNodes int) ThreadAlloc {
	if n <= 0 {
		return ThreadAlloc{}
	}
	// Single-thread cost per tier approximates its weight.
	wLocal := h.ReadTime(tier.Local, pl.LocalBytes, pl.LocalOps, 1, activeNodes)
	wRemote := h.ReadTime(tier.Remote, pl.RemoteBytes, pl.RemoteOps, 1, activeNodes)
	wPFS := h.ReadTime(tier.PFS, pl.PFSBytes, pl.PFSOps, 1, activeNodes)
	total := wLocal + wRemote + wPFS
	var alloc ThreadAlloc
	if total <= 0 {
		alloc.Local = n
		return alloc
	}
	assign := func(w float64, ops int) int {
		if ops == 0 {
			return 0
		}
		k := int(math.Round(w / total * float64(n)))
		if k < 1 {
			k = 1
		}
		return k
	}
	alloc.Local = assign(wLocal, pl.LocalOps)
	alloc.Remote = assign(wRemote, pl.RemoteOps)
	alloc.PFS = assign(wPFS, pl.PFSOps)
	// Trim rounding overshoot from the largest share; pad undershoot onto
	// the most loaded tier.
	for alloc.Total() > n && alloc.Total() > 1 {
		switch {
		case alloc.Local > 1 && wLocal <= wRemote && wLocal <= wPFS:
			alloc.Local--
		case alloc.Remote > 1 && wRemote <= wPFS:
			alloc.Remote--
		case alloc.PFS > 1:
			alloc.PFS--
		case alloc.Remote > 1:
			alloc.Remote--
		default:
			alloc.Local--
		}
	}
	for alloc.Total() < n {
		switch {
		case wPFS >= wRemote && wPFS >= wLocal && pl.PFSOps > 0:
			alloc.PFS++
		case wRemote >= wLocal && pl.RemoteOps > 0:
			alloc.Remote++
		default:
			alloc.Local++
		}
	}
	return alloc
}

// LoadTime evaluates Equation 1: the duration of loading a mini-batch with
// the given placement and per-tier thread allocation, with activeNodes
// nodes sharing the PFS.
//
// A busy tier holding zero dedicated threads is serviced by the whole
// allocation time-sharing across tiers (the realistic behaviour when a GPU
// has fewer loading threads than tiers with work, e.g. PyTorch's one
// worker doing local then PFS reads in turn). Only an entirely empty
// allocation with pending work yields +Inf.
func LoadTime(h tier.Hierarchy, pl BatchPlacement, alloc ThreadAlloc, activeNodes int) float64 {
	local, remote, pfs := LoadTimeParts(h, pl, alloc, activeNodes)
	return local + remote + pfs
}

// LoadTimeParts returns the three Equation 1 terms separately, letting
// callers perturb individual tiers (the simulator injects PFS burstiness
// into the third term only).
func LoadTimeParts(h tier.Hierarchy, pl BatchPlacement, alloc ThreadAlloc, activeNodes int) (local, remote, pfs float64) {
	total := alloc.Total()
	if total == 0 {
		if pl.TotalOps() > 0 {
			inf := math.Inf(1)
			return inf, inf, inf
		}
		return 0, 0, 0
	}
	threadsFor := func(dedicated, ops int) int {
		if ops == 0 {
			return dedicated
		}
		if dedicated == 0 {
			return total // time-shared across tiers
		}
		return dedicated
	}
	local = h.ReadTime(tier.Local, pl.LocalBytes, pl.LocalOps, threadsFor(alloc.Local, pl.LocalOps), activeNodes)
	remote = h.ReadTime(tier.Remote, pl.RemoteBytes, pl.RemoteOps, threadsFor(alloc.Remote, pl.RemoteOps), activeNodes)
	pfs = h.ReadTime(tier.PFS, pl.PFSBytes, pl.PFSOps, threadsFor(alloc.PFS, pl.PFSOps), activeNodes)
	return local, remote, pfs
}

// TimeDifference is the Equation 2 objective for one GPU: the signed gap
// (T_L + T_P) - T_train. Positive means the data pipeline is the
// bottleneck (the GPU will straggle); negative means training dominates
// and loading threads could be given away.
func TimeDifference(loadTime, preprocTime, trainTime float64) float64 {
	return loadTime + preprocTime - trainTime
}

// PreprocPortfolio is the Section 4.1 model portfolio: one piecewise-linear
// "threads -> per-sample preprocessing time" model per training-sample
// size. "During runtime, if the sample size does not have a corresponding
// model in the portfolio, we choose the model whose sample size is closest
// to the one considered."
type PreprocPortfolio struct {
	sizes  []int64 // ascending
	models []*stats.PiecewiseLinear
}

// FitPortfolio builds a portfolio by measuring per-sample preprocessing
// time at each (size, threads) grid point via the measure callback and
// fitting a piecewise-linear model with the given segment count per size.
// The measure callback returns seconds per sample of `size` bytes when
// preprocessing runs with `threads` threads.
//
// The per-size fits are independent, so they fan out over pool (nil =
// serial); measure must then be safe for concurrent calls. Models are
// slotted by size index, so the fitted portfolio is identical for any
// pool width.
func FitPortfolio(pool *par.Pool, sizes []int64, maxThreads, segments int,
	measure func(size int64, threads int) float64) (*PreprocPortfolio, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("perfmodel: no sizes to fit")
	}
	if maxThreads < 2 {
		return nil, fmt.Errorf("perfmodel: maxThreads %d < 2", maxThreads)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			return nil, fmt.Errorf("perfmodel: sizes must be strictly ascending at %d", i)
		}
	}
	p := &PreprocPortfolio{sizes: append([]int64(nil), sizes...)}
	models, err := par.Map(pool, len(sizes), func(i int) (*stats.PiecewiseLinear, error) {
		size := sizes[i]
		xs := make([]float64, 0, maxThreads)
		ys := make([]float64, 0, maxThreads)
		for n := 1; n <= maxThreads; n++ {
			xs = append(xs, float64(n))
			ys = append(ys, measure(size, n))
		}
		m, err := stats.FitPiecewiseLinear(xs, ys, segments)
		if err != nil {
			return nil, fmt.Errorf("perfmodel: fitting size %d: %w", size, err)
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	p.models = models
	return p, nil
}

// modelFor returns the model whose size is closest to the requested one.
func (p *PreprocPortfolio) modelFor(size int64) *stats.PiecewiseLinear {
	best, bestDiff := 0, int64(math.MaxInt64)
	for i, s := range p.sizes {
		d := s - size
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return p.models[best]
}

// SampleTime predicts the per-sample preprocessing time for a sample of
// the given size with n threads.
func (p *PreprocPortfolio) SampleTime(size int64, n int) float64 {
	t := p.modelFor(size).Eval(float64(n))
	// Per-sample time scales with actual size relative to the fitted
	// bucket: the kernels are streaming, so time is ~linear in bytes.
	bucket := p.closestSize(size)
	if bucket > 0 {
		t *= float64(size) / float64(bucket)
	}
	return t
}

// BatchTime predicts preprocessing time of a batch of count samples
// totalling `bytes` with n threads.
func (p *PreprocPortfolio) BatchTime(bytes int64, count, n int) float64 {
	if count <= 0 {
		return 0
	}
	avg := bytes / int64(count)
	return p.SampleTime(avg, n) * float64(count)
}

// PeakThreads returns the thread count in [1, maxThreads] minimizing the
// per-sample time for the given size — the "optimal number of
// preprocessing threads" of Section 4.1, Step 1.
func (p *PreprocPortfolio) PeakThreads(size int64, maxThreads int) int {
	m := p.modelFor(size)
	best, bestN := math.Inf(1), 1
	for n := 1; n <= maxThreads; n++ {
		if t := m.Eval(float64(n)); t < best-1e-15 {
			best, bestN = t, n
		}
	}
	return bestN
}

func (p *PreprocPortfolio) closestSize(size int64) int64 {
	best, bestDiff := int64(0), int64(math.MaxInt64)
	for _, s := range p.sizes {
		d := s - size
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = s, d
		}
	}
	return best
}

// Sizes returns the portfolio's fitted size buckets.
func (p *PreprocPortfolio) Sizes() []int64 {
	return append([]int64(nil), p.sizes...)
}
