package experiments

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

func tinyParams() Params {
	return Params{Scale: dataset.ScaleTiny, Seed: 42}
}

func runExp(t *testing.T, id string) *Report {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(tinyParams())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(rep.Lines) == 0 {
		t.Fatalf("%s: empty report", id)
	}
	return rep
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registry has %d experiments, want 18 (14 paper + 4 extensions)", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestReportHelpers(t *testing.T) {
	r := &Report{ID: "x", Title: "y"}
	r.Printf("a=%d", 1)
	r.Set("k", 2.5)
	if len(r.Lines) != 1 || r.Lines[0] != "a=1" {
		t.Fatalf("lines = %v", r.Lines)
	}
	if !strings.Contains(r.Text(), "== x: y ==") {
		t.Fatalf("text = %q", r.Text())
	}
	vals := r.SortedValues()
	if len(vals) != 1 || vals[0] != "k=2.5" {
		t.Fatalf("values = %v", vals)
	}
}

func TestFig03Breakdown(t *testing.T) {
	rep := runExp(t, "fig03")
	if rep.Values["imbalanced_frac"] <= 0 {
		t.Error("no imbalance observed under DALI, contradicting Observation 1")
	}
	if rep.Values["load_bottleneck_frac"] <= 0 {
		t.Error("loading never the bottleneck, contradicting Observation 2")
	}
}

func TestFig04ReuseDistance(t *testing.T) {
	rep := runExp(t, "fig04")
	if got := rep.Values["frac_long"]; got < 0.6 {
		t.Errorf("long-reuse fraction %.2f, want most samples long (paper ~0.8)", got)
	}
	if rep.Values["mean_reuse_epochs"] < 1 {
		t.Error("mean reuse distance below one epoch is impossible for epoch sampling")
	}
}

func TestFig06PreprocThreads(t *testing.T) {
	rep := runExp(t, "fig06")
	if got := rep.Values["peak_threads"]; got != 6 {
		t.Errorf("peak threads = %g, want 6 (Fig. 6)", got)
	}
	if rep.Values["degradation_at_16"] <= 0 {
		t.Error("no degradation beyond the peak")
	}
}

func TestFig07aOrdering(t *testing.T) {
	rep := runExp(t, "fig07a")
	lob := rep.Values["speedup_lobster"]
	nop := rep.Values["speedup_nopfs"]
	if lob <= nop || nop <= 1 {
		t.Errorf("speedup ordering broken: lobster %.2f, nopfs %.2f", lob, nop)
	}
	if lob < 1.2 {
		t.Errorf("Lobster speedup %.2f too small (paper 1.6x)", lob)
	}
	if rep.Values["hit_lobster"] <= rep.Values["hit_nopfs"] {
		t.Error("Lobster hit ratio not above NoPFS")
	}
}

func TestFig07bLargerDataset(t *testing.T) {
	rep := runExp(t, "fig07b")
	if rep.Values["speedup_lobster"] <= 1.2 {
		t.Errorf("22K speedup %.2f too small", rep.Values["speedup_lobster"])
	}
}

func TestFig07cMultiNode(t *testing.T) {
	rep := runExp(t, "fig07c")
	if rep.Values["speedup_lobster"] <= 1.2 {
		t.Errorf("multi-node speedup %.2f too small (paper 2.0x)", rep.Values["speedup_lobster"])
	}
	if rep.Values["speedup_nopfs"] <= 1 {
		t.Error("NoPFS not faster than PyTorch at multi-node")
	}
}

func TestFig07dScalability(t *testing.T) {
	rep := runExp(t, "fig07d")
	if rep.Values["avg_speedup"] < 1.2 {
		t.Errorf("average scalability speedup %.2f too small (paper 1.53x)", rep.Values["avg_speedup"])
	}
	for _, k := range []string{"speedup_1nodes", "speedup_2nodes", "speedup_4nodes", "speedup_8nodes"} {
		if rep.Values[k] <= 1 {
			t.Errorf("%s = %.2f, want > 1 at every scale", k, rep.Values[k])
		}
	}
}

func TestFig08Imbalance(t *testing.T) {
	for _, id := range []string{"fig08a", "fig08b"} {
		rep := runExp(t, id)
		if rep.Values["imbalance_lobster"] >= rep.Values["imbalance_pytorch"] {
			t.Errorf("%s: Lobster imbalance %.2f not below PyTorch %.2f", id,
				rep.Values["imbalance_lobster"], rep.Values["imbalance_pytorch"])
		}
		if rep.Values["imbalance_lobster"] >= rep.Values["imbalance_dali"] {
			t.Errorf("%s: Lobster imbalance not below DALI", id)
		}
	}
}

func TestFig08cBatchTimes(t *testing.T) {
	rep := runExp(t, "fig08c")
	if rep.Values["mean_lobster"] >= rep.Values["mean_pytorch"] {
		t.Error("Lobster mean batch time not below PyTorch")
	}
	if rep.Values["mean_lobster"] >= rep.Values["mean_dali"] {
		t.Error("Lobster mean batch time not below DALI")
	}
}

func TestFig09Accuracy(t *testing.T) {
	rep := runExp(t, "fig09")
	if rep.Values["curves_identical"] != 1 {
		t.Error("accuracy curves differ between loaders, contradicting Fig. 9")
	}
	if rep.Values["walltime_speedup"] <= 1 {
		t.Error("Lobster not faster in wall time")
	}
}

func TestTabHitRatioOrdering(t *testing.T) {
	rep := runExp(t, "tab-hitratio")
	order := []string{"hit_pytorch", "hit_dali", "hit_nopfs", "hit_lobster"}
	for i := 1; i < len(order); i++ {
		if rep.Values[order[i]] <= rep.Values[order[i-1]] {
			t.Errorf("hit ratio ordering broken at %s (%.3f) vs %s (%.3f)",
				order[i], rep.Values[order[i]], order[i-1], rep.Values[order[i-1]])
		}
	}
	if rep.Values["improvement_vs_nopfs_pp"] <= 0 {
		t.Error("no improvement over NoPFS")
	}
}

func TestFig10UtilOrdering(t *testing.T) {
	rep := runExp(t, "fig10")
	if rep.Values["avg_util_lobster"] <= rep.Values["avg_util_nopfs"] {
		t.Error("Lobster average utilization not above NoPFS")
	}
	if rep.Values["avg_util_nopfs"] <= rep.Values["avg_util_pytorch"] {
		t.Error("NoPFS average utilization not above PyTorch")
	}
}

func TestFig11AblationClaims(t *testing.T) {
	rep := runExp(t, "fig11")
	th := rep.Values["avg_speedup_lobster_th"]
	evict := rep.Values["avg_speedup_lobster_evict"]
	full := rep.Values["avg_speedup_lobster"]
	if th <= evict {
		t.Errorf("thread management (%.2fx) must contribute more than eviction (%.2fx)", th, evict)
	}
	if full <= th {
		t.Errorf("full Lobster (%.2fx) must beat thread management alone (%.2fx)", full, th)
	}
	if evict <= 1 {
		t.Errorf("eviction alone (%.2fx) must still beat DALI", evict)
	}
	// Eviction helps small models more than large ones (paper's second
	// Fig. 11 observation): compare its speedup on shufflenet vs vgg11.
	small := rep.Values["speedup_shufflenet_lobster_evict"]
	large := rep.Values["speedup_vgg11_lobster_evict"]
	if small <= large {
		t.Errorf("eviction speedup on shufflenet (%.2fx) not above vgg11 (%.2fx)", small, large)
	}
}

func TestExtCacheSweep(t *testing.T) {
	rep := runExp(t, "ext-cachesweep")
	// Hit ratio must grow with the cache; speedup must stay above 1
	// everywhere.
	if rep.Values["lobhit_at_80"] <= rep.Values["lobhit_at_5"] {
		t.Error("hit ratio not increasing with cache size")
	}
	for _, k := range []string{"speedup_at_5", "speedup_at_30", "speedup_at_80"} {
		if rep.Values[k] <= 1 {
			t.Errorf("%s = %.2f, want > 1", k, rep.Values[k])
		}
	}
}

func TestExtPolicyZoo(t *testing.T) {
	rep := runExp(t, "ext-policyzoo")
	if rep.Values["hit_lobster"] < rep.Values["hit_lru"] {
		t.Error("lobster policy below LRU")
	}
	if rep.Values["hit_belady"]+1e-9 < rep.Values["hit_lobster"] {
		t.Error("lobster above the clairvoyant bound, impossible")
	}
	if rep.Values["hit_arc"] < rep.Values["hit_lru"]-0.02 {
		t.Error("ARC clearly below LRU")
	}
}

func TestExtTimeToAccuracy(t *testing.T) {
	rep := runExp(t, "ext-tta")
	if rep.Values["speedup_lobster"] <= rep.Values["speedup_nopfs"] {
		t.Error("Lobster time-to-accuracy not better than NoPFS")
	}
	if rep.Values["speedup_lobster"] <= 1.1 {
		t.Errorf("Lobster time-to-accuracy speedup %.2f too small", rep.Values["speedup_lobster"])
	}
	if rep.Values["tta_lobster"] >= rep.Values["tta_pytorch"] {
		t.Error("Lobster not faster to target accuracy")
	}
}
