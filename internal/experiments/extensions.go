package experiments

import (
	"fmt"

	"repro/internal/loader"
	"repro/internal/pipeline"
	"repro/internal/trainsim"
)

// ExtCacheSweep is an extension experiment beyond the paper's figures: how
// each system's end-to-end time and hit ratio respond to the node cache
// size, from 5% to 80% of the dataset. The paper only remarks that "if
// the cache is large, all samples are placed locally without causing I/O";
// this sweep maps the whole curve and shows where Lobster's advantage
// peaks (mid-range caches, where eviction quality matters most) and where
// it vanishes (tiny caches: nothing to manage; huge caches: nothing to
// evict).
func ExtCacheSweep() Experiment {
	return Experiment{
		ID:    "ext-cachesweep",
		Title: "Extension: sensitivity to node cache size, single node, ImageNet-1K",
		Paper: "not in the paper (extension); anchors: Section 5.1's cache remark",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet1K(p, 8)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "ext-cachesweep", Title: "Cache-size sensitivity (extension)"}
			fractions := []float64{0.05, 0.15, 0.30, 0.50, 0.80}
			rep.Printf("%8s %14s %14s %12s %12s", "cache%", "pytorch(s)", "lobster(s)", "speedup", "lob hit%")
			var cfgs []pipeline.Config
			for _, frac := range fractions {
				top := topology(1, ds, frac)
				cfgs = append(cfgs,
					baseConfig(p, top, ds, resnet50(), loader.PyTorch(top.GPUsPerNode, top.CPUThreads)),
					baseConfig(p, top, ds, resnet50(), loader.Lobster()))
			}
			results, err := runAll(p, cfgs)
			if err != nil {
				return nil, err
			}
			for fi, frac := range fractions {
				base, lob := results[2*fi], results[2*fi+1]
				sp := base.Metrics.TotalTime / lob.Metrics.TotalTime
				rep.Printf("%8.0f %14.2f %14.2f %12.2f %12.1f", frac*100,
					base.Metrics.TotalTime, lob.Metrics.TotalTime, sp,
					lob.Metrics.HitRatio()*100)
				rep.Set(fmt.Sprintf("speedup_at_%d", int(frac*100)), sp)
				rep.Set(fmt.Sprintf("lobhit_at_%d", int(frac*100)), lob.Metrics.HitRatio())
			}
			return rep, nil
		},
	}
}

// ExtPolicyZoo is an extension experiment: the full eviction-policy zoo
// (including LFU and ARC, classic policies the paper does not evaluate)
// under identical Lobster mechanics — where does the reuse-distance policy
// sit relative to the textbook alternatives and the clairvoyant bound?
func ExtPolicyZoo() Experiment {
	return Experiment{
		ID:    "ext-policyzoo",
		Title: "Extension: eviction-policy zoo under fixed mechanics, single node, ImageNet-1K",
		Paper: "not in the paper (extension); Section 5.5 compares only the four systems",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet1K(p, 8)
			if err != nil {
				return nil, err
			}
			top := topology(1, ds, CacheRatio1K)
			rep := &Report{ID: "ext-policyzoo", Title: "Eviction policy zoo (extension)"}
			rep.Printf("%-12s %10s %12s %10s", "policy", "hit%", "time(s)", "speedup")
			policies := []struct {
				name string
				kind loader.PolicyKind
			}{
				{"fifo", loader.PolicyFIFO},
				{"lru", loader.PolicyLRU},
				{"lfu", loader.PolicyLFU},
				{"arc", loader.PolicyARC},
				{"pagecache", loader.PolicyPageCache},
				{"nopfs", loader.PolicyNoPFS},
				{"lobster", loader.PolicyLobster},
				{"belady", loader.PolicyBelady},
			}
			var cfgs []pipeline.Config
			for _, pk := range policies {
				spec := loader.Lobster()
				spec.Name = "lobster+" + pk.name
				spec.Policy = pk.kind
				cfgs = append(cfgs, baseConfig(p, top, ds, resnet50(), spec))
			}
			results, err := runAll(p, cfgs)
			if err != nil {
				return nil, err
			}
			baseTime := results[0].Metrics.TotalTime
			for pi, pk := range policies {
				res := results[pi]
				rep.Printf("%-12s %10.1f %12.2f %10.2f", pk.name,
					res.Metrics.HitRatio()*100, res.Metrics.TotalTime,
					baseTime/res.Metrics.TotalTime)
				rep.Set("hit_"+pk.name, res.Metrics.HitRatio())
			}
			return rep, nil
		},
	}
}

// ExtTimeToAccuracy is an extension experiment combining Fig. 9 with the
// Fig. 7 speedups: since all loaders follow the identical sample schedule,
// accuracy-per-epoch is loader-independent — so the wall time to reach a
// target accuracy improves by exactly the loader's throughput factor.
// This is the metric a practitioner actually pays for.
func ExtTimeToAccuracy() Experiment {
	return Experiment{
		ID:    "ext-tta",
		Title: "Extension: wall time to target accuracy, ResNet50, single node, ImageNet-1K",
		Paper: "not in the paper (extension); combines Fig. 9's curves with Fig. 7's speedups",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet1K(p, 8)
			if err != nil {
				return nil, err
			}
			top := topology(1, ds, CacheRatio1K)
			model := resnet50()
			rep := &Report{ID: "ext-tta", Title: "Time to target accuracy (extension)"}

			// Target: the accuracy the schedule reaches at 60% of the
			// run (scale-independent anchor).
			probe := trainsim.AccuracyCurve(model, p.epochs(), p.Seed)
			target := probe[len(probe)*6/10-1]
			rep.Printf("target accuracy: %.4f (reached at epoch %d of %d)",
				target, len(probe)*6/10, p.epochs())
			rep.Printf("%-12s %16s %12s", "strategy", "time-to-acc(s)", "vs pytorch")
			specs := strategies(top)
			var cfgs []pipeline.Config
			for _, spec := range specs {
				cfgs = append(cfgs, baseConfig(p, top, ds, model, spec))
			}
			campaigns, err := runAllTrain(p, cfgs)
			if err != nil {
				return nil, err
			}
			var base float64
			for si, spec := range specs {
				tta := campaigns[si].TimeToAccuracy(target)
				if tta < 0 {
					return nil, fmt.Errorf("ext-tta: %s never reached %.4f", spec.Name, target)
				}
				if base == 0 {
					base = tta
				}
				rep.Printf("%-12s %16.2f %12.2f", spec.Name, tta, base/tta)
				rep.Set("tta_"+spec.Name, tta)
				rep.Set("speedup_"+spec.Name, base/tta)
			}
			return rep, nil
		},
	}
}
