package doctor

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// stallCauses are the ledger's attribution buckets, mirrored from
// internal/runtime's stallCauseNames (the doctor reads wire names, not
// Go symbols, so saved files from any build analyze the same way).
var stallCauses = []string{
	"local_hit", "peer_fetch", "pfs", "decode_wait", "queue_wait", "recovery",
}

// loadSideCauses are the causes that constitute a rank's load time —
// the storage-facing legs the imbalance and straggler analyses use.
var loadSideCauses = map[string]bool{
	"local_hit": true, "peer_fetch": true, "pfs": true, "recovery": true,
}

// DataPathCause reports whether a stall cause names a storage-facing
// leg (local_hit, peer_fetch, pfs, recovery) as opposed to a pipeline
// queueing symptom (decode_wait, queue_wait). Fault attribution blames
// the data path first: queue waits inflate second-hand whenever any
// data-path leg slows down.
func DataPathCause(name string) bool { return loadSideCauses[name] }

// stragglerFactor: a rank whose load time exceeds the mean by this
// factor is flagged (matches the usual "straggler = consistently >1.5x
// median peer" operational rule of thumb).
const stragglerFactor = 1.5

// RankReport is one rank's stall decomposition.
type RankReport struct {
	Rank        int
	Causes      []CauseTotal // dominant first
	LoadSeconds float64      // sum over load-side causes
}

// EpochImbalance is one epoch's load-balance coefficient, computed from
// the merged trace's attribution spans.
type EpochImbalance struct {
	Epoch       int
	Coefficient float64 // max over mean of per-rank load-side seconds
	MaxRank     int     // the rank holding the max
}

// Report is the doctor's analysis of one run's merged observability.
type Report struct {
	Ranks      []RankReport
	TopCauses  []CauseTotal // all ranks summed, dominant first
	Stragglers []int        // ranks with load time > stragglerFactor x mean

	// Imbalance is the live gauge's last value (0 when the scrape had
	// none); EpochImbalance is recomputed per epoch from the trace.
	Imbalance      float64
	EpochImbalance []EpochImbalance

	// Recovery-layer efficacy.
	HedgesFired     float64
	HedgesWon       float64
	Failovers       float64
	PartialFanouts  float64
	RecoverySeconds float64
}

// Analyze cross-references merged metrics and traces into a Report.
// Either input may be nil (metrics-only or trace-only analysis); the
// report fills what the available sources support.
func Analyze(m *Metrics, t *Trace) *Report {
	r := &Report{}
	if m != nil {
		r.analyzeMetrics(m)
	}
	if t != nil {
		r.analyzeTrace(t, itersPerEpoch(m))
	}
	return r
}

// itersPerEpoch reads the run's epoch length from the gauge the runtime
// registers; 0 when unknown (epoch grouping is then skipped).
func itersPerEpoch(m *Metrics) int {
	if m == nil {
		return 0
	}
	v, ok := m.Value("lobster_runtime_iters_per_epoch", nil)
	if !ok || v < 1 {
		return 0
	}
	return int(v)
}

func (r *Report) analyzeMetrics(m *Metrics) {
	// Per-rank cause totals from the stall histograms' _sum series.
	ranks := make(map[int]*RankReport)
	for _, cause := range stallCauses {
		series := "lobster_runtime_stall_" + cause + "_seconds_sum"
		for _, rankLabel := range m.LabelValues(series, "rank") {
			rank, err := strconv.Atoi(rankLabel)
			if err != nil {
				continue
			}
			secs := m.Sum(series, map[string]string{"rank": rankLabel})
			if secs == 0 {
				continue
			}
			rr := ranks[rank]
			if rr == nil {
				rr = &RankReport{Rank: rank}
				ranks[rank] = rr
			}
			rr.Causes = append(rr.Causes, CauseTotal{Cause: cause, Seconds: secs})
			if loadSideCauses[cause] {
				rr.LoadSeconds += secs
			}
		}
	}
	totals := make(map[string]float64)
	for _, rr := range ranks {
		sortCauses(rr.Causes)
		for _, ct := range rr.Causes {
			totals[ct.Cause] += ct.Seconds
		}
		r.Ranks = append(r.Ranks, *rr)
	}
	sort.Slice(r.Ranks, func(i, j int) bool { return r.Ranks[i].Rank < r.Ranks[j].Rank })
	for c, s := range totals {
		r.TopCauses = append(r.TopCauses, CauseTotal{Cause: c, Seconds: s})
	}
	sortCauses(r.TopCauses)

	// Stragglers: ranks whose load time stands out against the mean.
	if len(r.Ranks) > 1 {
		mean := 0.0
		for i := range r.Ranks {
			mean += r.Ranks[i].LoadSeconds
		}
		mean /= float64(len(r.Ranks))
		if mean > 0 {
			for i := range r.Ranks {
				if r.Ranks[i].LoadSeconds > stragglerFactor*mean {
					r.Stragglers = append(r.Stragglers, r.Ranks[i].Rank)
				}
			}
		}
	}

	r.Imbalance, _ = m.Value("lobster_runtime_load_imbalance", nil)
	r.HedgesFired = m.Sum("lobster_kvstore_hedge_fired_total", nil)
	r.HedgesWon = m.Sum("lobster_kvstore_hedge_won_total", nil)
	r.Failovers = m.Sum("lobster_runtime_failover_total", nil)
	r.PartialFanouts = m.Sum("lobster_runtime_partial_fanout_total", nil)
	r.RecoverySeconds = m.Sum("lobster_runtime_stall_recovery_seconds_sum", nil)
}

func (r *Report) analyzeTrace(t *Trace, ipe int) {
	if ipe < 1 {
		return
	}
	// Per-epoch, per-rank load-side seconds from the attribution spans.
	type key struct{ epoch, rank int }
	load := make(map[key]float64)
	maxEpoch := -1
	t.stallSpans(func(e *TraceEvent) {
		if !loadSideCauses[e.Name] {
			return
		}
		it, okIt := e.Args["iter"]
		rank, okRank := e.Args["rank"]
		if !okIt || !okRank {
			return
		}
		epoch := int(it) / ipe
		load[key{epoch, int(rank)}] += e.Dur / 1e6
		if epoch > maxEpoch {
			maxEpoch = epoch
		}
	})
	for epoch := 0; epoch <= maxEpoch; epoch++ {
		var sum, max float64
		maxRank, n := -1, 0
		for k, secs := range load {
			if k.epoch != epoch {
				continue
			}
			n++
			sum += secs
			if secs > max {
				max, maxRank = secs, k.rank
			}
		}
		if n == 0 || sum == 0 {
			continue
		}
		mean := sum / float64(n)
		r.EpochImbalance = append(r.EpochImbalance, EpochImbalance{
			Epoch: epoch, Coefficient: max / mean, MaxRank: maxRank,
		})
	}
}

// sortCauses orders dominant first, name-alphabetical on ties so the
// report is deterministic.
func sortCauses(cs []CauseTotal) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Seconds != cs[j].Seconds {
			return cs[i].Seconds > cs[j].Seconds
		}
		return cs[i].Cause < cs[j].Cause
	})
}

// WriteText renders the ranked bottleneck report.
func (r *Report) WriteText(w io.Writer) error {
	var werr error
	p := func(format string, args ...any) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, format, args...)
		}
	}
	p("lobster-doctor report\n=====================\n\n")
	if len(r.TopCauses) == 0 {
		p("no stall attribution found: scrape an instrumented run's /metrics\n")
		p("(lobster_runtime_stall_<cause>_seconds histograms) or pass its trace.json\n")
	} else {
		p("Top stall causes (all ranks):\n")
		for i, ct := range r.TopCauses {
			p("  %d. %-12s %9.3fs\n", i+1, ct.Cause, ct.Seconds)
		}
		p("\nPer-rank decomposition:\n")
		for _, rr := range r.Ranks {
			p("  rank %d (load %.3fs):", rr.Rank, rr.LoadSeconds)
			for _, ct := range rr.Causes {
				p(" %s=%.3fs", ct.Cause, ct.Seconds)
			}
			p("\n")
		}
	}
	if len(r.Stragglers) > 0 {
		p("\nStragglers (load time > %.1fx mean): ranks %v\n", stragglerFactor, r.Stragglers)
	} else if len(r.Ranks) > 1 {
		p("\nNo straggler: per-rank load times within %.1fx of the mean.\n", stragglerFactor)
	}
	if r.Imbalance > 0 {
		p("\nLoad imbalance (last iteration, max/mean): %.2f\n", r.Imbalance)
	}
	if len(r.EpochImbalance) > 0 {
		p("Per-epoch load imbalance:\n")
		for _, ei := range r.EpochImbalance {
			p("  epoch %d: %.2f (max at rank %d)\n", ei.Epoch, ei.Coefficient, ei.MaxRank)
		}
	}
	if r.HedgesFired > 0 || r.Failovers > 0 || r.PartialFanouts > 0 {
		p("\nRecovery layer:\n")
		if r.HedgesFired > 0 {
			p("  hedged reads: %.0f fired, %.0f won (%.0f%% efficacy)\n",
				r.HedgesFired, r.HedgesWon, 100*r.HedgesWon/r.HedgesFired)
		}
		if r.Failovers > 0 {
			avg := 0.0
			if r.RecoverySeconds > 0 {
				avg = r.RecoverySeconds / r.Failovers
			}
			p("  failovers: %.0f, %.3fs spent in recovery reads (%.1fms avg)\n",
				r.Failovers, r.RecoverySeconds, 1e3*avg)
		}
		if r.PartialFanouts > 0 {
			p("  partial fan-outs: %.0f\n", r.PartialFanouts)
		}
	}
	return werr
}
