// Quickstart: simulate one epoch-scale training run with Lobster and with
// the PyTorch DataLoader baseline on a single 8-GPU node, and print the
// comparison — the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	var runs []*metrics.Run
	for _, strategy := range []string{"pytorch", "lobster"} {
		cfg, err := core.NewConfig(core.Workload{
			Dataset:  "imagenet-1k",
			Scale:    "tiny", // a few thousand synthetic samples
			Model:    "resnet50",
			Nodes:    1,
			Epochs:   6,
			Strategy: strategy,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, res.Metrics)
	}
	fmt.Println("ResNet50 on synthetic ImageNet-1K, one node with 8 GPUs:")
	fmt.Println()
	fmt.Print(metrics.Table(runs))
	fmt.Println()
	fmt.Printf("Lobster trains the same schedule %.2fx faster by keeping the\n",
		runs[1].Speedup(runs[0]))
	fmt.Println("GPUs fed: higher cache hit ratio, fewer imbalanced iterations.")
}
