package kvstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// testServerOptions starts a shard with explicit options on an
// ephemeral port.
func testServerOptions(t *testing.T, opts ServerOptions) *Server {
	t.Helper()
	s, err := NewServerOptions("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestAdmissionQuotaShed arms only the per-connection token bucket and
// checks the shed surfaces as ErrRetryLater on the plain (retry-free)
// ops of both protocols, that Stats counts it, and that a shed response
// leaves the connection healthy for later requests.
func TestAdmissionQuotaShed(t *testing.T) {
	s := testServerOptions(t, ServerOptions{
		Capacity: 1 << 20,
		// One token, refilled every 10s: the first data op spends it,
		// the second is shed deterministically.
		Admission: AdmissionConfig{QuotaRate: 0.1, QuotaBurst: 1},
	})
	cl, err := NewClientV2(s.Addr(), 1) // one conn = one bucket
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatalf("first op should be admitted: %v", err)
	}
	_, _, err = cl.Get("k")
	if !errors.Is(err, ErrRetryLater) {
		t.Fatalf("second op: err = %v, want ErrRetryLater", err)
	}
	// Stats is exempt from the quota gate and reports the shed.
	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats must be exempt from admission: %v", err)
	}
	if st.ShedQuota != 1 {
		t.Fatalf("ShedQuota = %d, want 1", st.ShedQuota)
	}

	// Same behaviour over the v1 protocol, on a fresh connection (fresh
	// bucket).
	c1, err := NewClient(s.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, _, err := c1.Get("k"); err != nil {
		t.Fatalf("v1 first op should be admitted: %v", err)
	}
	if err := c1.Put("k2", []byte("v")); !errors.Is(err, ErrRetryLater) {
		t.Fatalf("v1 second op: err = %v, want ErrRetryLater", err)
	}
}

// TestAdmissionQueueShed fills the in-flight gate with slow requests
// and checks the overflow is shed, not queued without bound.
func TestAdmissionQueueShed(t *testing.T) {
	s := testServerOptions(t, ServerOptions{
		Capacity:  1 << 20,
		Admission: AdmissionConfig{MaxInFlight: 1, MaxQueue: 1, MaxWait: 5 * time.Millisecond},
	})
	s.SetLag(50 * time.Millisecond)
	cl := testClientV2(t, s)
	const n = 8
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := cl.Get("missing")
			errs <- err
		}()
	}
	defer wg.Wait()
	sheds := 0
	for i := 0; i < n; i++ {
		if err := <-errs; errors.Is(err, ErrRetryLater) {
			sheds++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if sheds == 0 {
		t.Fatal("no request was shed at a 1-slot gate with 8 concurrent ops")
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ShedQueue == 0 {
		t.Fatalf("ShedQueue = 0 after %d sheds", sheds)
	}
	// The shed path must preserve framing: the connection still works.
	s.SetLag(0)
	if err := cl.Put("after", []byte("ok")); err != nil {
		t.Fatalf("connection unhealthy after sheds: %v", err)
	}
}

// TestAdmissionDeadlineShed parks a slow request in the single
// in-flight slot and sends a deadlined request behind it: the server
// must shed it at the gate once its budget runs out, and the client's
// context must expire cleanly.
func TestAdmissionDeadlineShed(t *testing.T) {
	s := testServerOptions(t, ServerOptions{
		Capacity:  1 << 20,
		Admission: AdmissionConfig{MaxInFlight: 1, MaxQueue: 4, MaxWait: time.Second},
	})
	s.SetLag(200 * time.Millisecond)
	cl := testClientV2(t, s)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = cl.Get("occupier") // holds the slot for the lag
	}()
	time.Sleep(10 * time.Millisecond) // let the occupier take the slot
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := cl.GetContext(ctx, "deadlined")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	wg.Wait()
	s.SetLag(0)
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ShedDeadline == 0 {
		t.Fatal("ShedDeadline = 0: the deadlined request was never shed at the gate")
	}
}

// TestClientV2RetryAfterShed checks the context ops absorb a shed with
// backoff: a 1-token bucket refilling fast enough sheds the second op
// once, then the retry succeeds.
func TestClientV2RetryAfterShed(t *testing.T) {
	s := testServerOptions(t, ServerOptions{
		Capacity: 1 << 20,
		// 200 tokens/sec = one fresh token every 5ms; burst 1.
		Admission: AdmissionConfig{QuotaRate: 200, QuotaBurst: 1},
	})
	cl, err := NewClientV2(s.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	v, found, err := cl.GetContext(ctx, "k")
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("GetContext after shed = %q, %v, %v; want v, true, nil", v, found, err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ShedQuota == 0 {
		t.Fatal("ShedQuota = 0: the retry path was never exercised")
	}

	// Batch ops retry too.
	if err := cl.MultiPutContext(ctx, []string{"a", "b"}, [][]byte{[]byte("1"), []byte("2")}); err != nil {
		t.Fatalf("MultiPutContext: %v", err)
	}
	vals, err := cl.MultiGetContext(ctx, []string{"a", "b", "absent"})
	if err != nil {
		t.Fatalf("MultiGetContext: %v", err)
	}
	if string(vals[0]) != "1" || string(vals[1]) != "2" || vals[2] != nil {
		t.Fatalf("MultiGetContext values = %q", vals)
	}
}

// TestClientV2ContextCancelMidPipeline hammers a lagged server with
// short-deadline ops from many goroutines: cancelled calls must leave
// no stuck waiters and no pool corruption, and afterwards the same
// client must still round-trip values correctly. Run under -race.
func TestClientV2ContextCancelMidPipeline(t *testing.T) {
	s := testServer(t, 1<<20)
	cl := testClientV2(t, s)
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.SetLag(2 * time.Millisecond)
	const goroutines, iters = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Deadlines from already-expired up to ~the lag, so
				// cancellations land before, during and after the
				// window wait, the queue and the server round trip.
				d := time.Duration((g+i)%4) * time.Millisecond
				ctx, cancel := context.WithTimeout(context.Background(), d)
				switch i % 3 {
				case 0:
					_, _, err := cl.GetContext(ctx, "k")
					if err != nil && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("GetContext: %v", err)
					}
				case 1:
					key := fmt.Sprintf("w/%d/%d", g, i)
					err := cl.PutContext(ctx, key, []byte(key))
					if err != nil && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("PutContext: %v", err)
					}
				case 2:
					_, err := cl.MultiGetContext(ctx, []string{"k", "absent"})
					if err != nil && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("MultiGetContext: %v", err)
					}
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	s.SetLag(0)
	// The pipeline must be fully healthy: every pooled call object
	// recycles cleanly and values round-trip uncorrupted.
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("post/%d", i)
		if err := cl.Put(key, []byte(key)); err != nil {
			t.Fatalf("post-cancel Put: %v", err)
		}
		v, found, err := cl.Get(key)
		if err != nil || !found || string(v) != key {
			t.Fatalf("post-cancel Get(%q) = %q, %v, %v", key, v, found, err)
		}
	}
}

// testClusterServers starts n shards and returns them with their
// addresses.
func testClusterServers(t *testing.T, n int) ([]*Server, []string) {
	t.Helper()
	servers := make([]*Server, n)
	addrs := make([]string, n)
	for i := range servers {
		servers[i] = testServer(t, 1<<20)
		addrs[i] = servers[i].Addr()
	}
	return servers, addrs
}

// clusterKeysFor returns numPer keys routed to each shard of c, so a
// test can guarantee fan-out coverage of every shard.
func clusterKeysFor(t *testing.T, c *Cluster, numPer int) []string {
	t.Helper()
	per := make([]int, c.Shards())
	var keys []string
	for i := 0; len(keys) < numPer*c.Shards(); i++ {
		key := fmt.Sprintf("sample/%d", i)
		if s := c.shardIndex(key); per[s] < numPer {
			per[s]++
			keys = append(keys, key)
		}
		if i > 100000 {
			t.Fatal("could not route keys to every shard")
		}
	}
	return keys
}

// TestClusterMultiGetPartialShardDown kills one shard of a
// replica-less cluster: MultiGet must return the healthy shards'
// values alongside a *PartialError, not discard the batch.
func TestClusterMultiGetPartialShardDown(t *testing.T) {
	servers, addrs := testClusterServers(t, 3)
	c, err := NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := clusterKeysFor(t, c, 4)
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = []byte("v:" + k)
	}
	if err := c.MultiPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	const down = 1
	servers[down].Close()
	got, err := c.MultiGet(keys)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if pe.Failed == 0 || pe.Failed >= pe.Attempted {
		t.Fatalf("PartialError = %+v, want 0 < Failed < Attempted", pe)
	}
	for i, k := range keys {
		if c.shardIndex(k) == down {
			if got[i] != nil {
				t.Fatalf("key %q on dead shard returned %q", k, got[i])
			}
			continue
		}
		if string(got[i]) != "v:"+k {
			t.Fatalf("key %q = %q, want %q", k, got[i], "v:"+k)
		}
	}
}

// TestClusterHedgedReadShardDown kills one shard of a replicated
// cluster: reads whose primary died must fail over to the replica and
// still succeed, for both Get and MultiGet.
func TestClusterHedgedReadShardDown(t *testing.T) {
	servers, addrs := testClusterServers(t, 3)
	c, err := NewClusterConfig(addrs, ClusterConfig{
		Conns: 2, Replicas: 1, HedgeDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := clusterKeysFor(t, c, 4)
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = []byte("v:" + k)
	}
	if err := c.MultiPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	const down = 0
	servers[down].Close()
	got, err := c.MultiGet(keys)
	if err != nil {
		t.Fatalf("hedged MultiGet with one shard down: %v", err)
	}
	for i, k := range keys {
		if string(got[i]) != "v:"+k {
			t.Fatalf("key %q = %q, want %q", k, got[i], "v:"+k)
		}
	}
	for _, k := range keys {
		if c.shardIndex(k) != down {
			continue
		}
		v, found, err := c.Get(k)
		if err != nil || !found || string(v) != "v:"+k {
			t.Fatalf("hedged Get(%q) = %q, %v, %v", k, v, found, err)
		}
	}
	if fired, _ := c.HedgeCounters(); fired == 0 {
		t.Fatal("no hedge fired with the primary shard down")
	}
}

// TestClusterHedgedReadSlowShard lags one shard far beyond the fixed
// hedge delay: reads must complete at replica speed, with the hedge arm
// winning the race.
func TestClusterHedgedReadSlowShard(t *testing.T) {
	servers, addrs := testClusterServers(t, 3)
	c, err := NewClusterConfig(addrs, ClusterConfig{
		Conns: 2, Replicas: 1, HedgeDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := clusterKeysFor(t, c, 4)
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = []byte("v:" + k)
	}
	if err := c.MultiPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	const slow, lag = 0, 300 * time.Millisecond
	servers[slow].SetFault(FaultConfig{Lag: lag})
	start := time.Now()
	got, err := c.MultiGet(keys)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged MultiGet with one slow shard: %v", err)
	}
	for i, k := range keys {
		if string(got[i]) != "v:"+k {
			t.Fatalf("key %q = %q, want %q", k, got[i], "v:"+k)
		}
	}
	if elapsed >= lag {
		t.Fatalf("MultiGet took %v, not hedged around the %v straggler", elapsed, lag)
	}
	if _, won := c.HedgeCounters(); won == 0 {
		t.Fatal("hedge never won against a slow primary")
	}
}

// TestHedgeTrackerAdaptiveDelay checks the adaptive policy follows the
// observed latency quantile and respects its clamps.
func TestHedgeTrackerAdaptiveDelay(t *testing.T) {
	tr := newHedgeTracker(0, 0.95, time.Millisecond, 100*time.Millisecond)
	if d := tr.delay(); d != 100*time.Millisecond {
		t.Fatalf("cold delay = %v, want the max clamp", d)
	}
	for i := 0; i < hedgeRingSize; i++ {
		tr.observe(10 * time.Millisecond)
	}
	if d := tr.delay(); d != 10*time.Millisecond {
		t.Fatalf("delay = %v, want 10ms after uniform 10ms observations", d)
	}
	// Clamped below.
	for i := 0; i < hedgeRingSize; i++ {
		tr.observe(10 * time.Microsecond)
	}
	if d := tr.delay(); d != time.Millisecond {
		t.Fatalf("delay = %v, want the 1ms min clamp", d)
	}
	// Fixed delay ignores observations.
	fx := newHedgeTracker(7*time.Millisecond, 0.95, 0, 0)
	fx.observe(time.Second)
	if d := fx.delay(); d != 7*time.Millisecond {
		t.Fatalf("fixed delay = %v, want 7ms", d)
	}
}

// TestAdmissionConfigDefaults covers the admitter's defaulting and the
// nil-admitter fast paths.
func TestAdmissionConfigDefaults(t *testing.T) {
	if a := newAdmitter(AdmissionConfig{}); a != nil {
		t.Fatal("zero config must disable admission")
	}
	a := newAdmitter(AdmissionConfig{MaxInFlight: 8})
	if a.cfg.MaxQueue != 32 {
		t.Fatalf("MaxQueue default = %d, want 4x in-flight", a.cfg.MaxQueue)
	}
	if a.cfg.MaxWait != defaultMaxWait {
		t.Fatalf("MaxWait default = %v, want %v", a.cfg.MaxWait, defaultMaxWait)
	}
	b := newAdmitter(AdmissionConfig{QuotaRate: 10})
	if b.cfg.QuotaBurst != 10 {
		t.Fatalf("QuotaBurst default = %v, want QuotaRate", b.cfg.QuotaBurst)
	}
	var nilA *admitter
	if v := nilA.admit(nil, time.Time{}, time.Now()); v != admitOK {
		t.Fatalf("nil admitter verdict = %v, want admitOK", v)
	}
	nilA.release()
	if d, q, qu := nilA.sheds(); d+q+qu != 0 {
		t.Fatal("nil admitter sheds non-zero")
	}
	if nilA.queueDepth() != 0 {
		t.Fatal("nil admitter queueDepth non-zero")
	}
}
