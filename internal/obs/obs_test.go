package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterGauge checks basic recording plus the disabled and
// nil-receiver no-op paths.
func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lobster_test_ops_total", "ops")
	g := r.Gauge("lobster_test_depth", "depth")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}

	r.SetEnabled(false)
	c.Inc()
	g.Set(99)
	if c.Value() != 5 || g.Value() != 5 {
		t.Fatalf("disabled registry still recorded: counter=%d gauge=%d", c.Value(), g.Value())
	}

	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	nilC.Inc()
	nilG.Set(1)
	nilH.Observe(1)
	if nilC.Value() != 0 || nilG.Value() != 0 || nilH.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

// TestRegistryIdempotent checks that re-registering a series returns
// the same instrument, and that distinct label sets get distinct ones.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lobster_test_total", "h", "node", "0")
	b := r.Counter("lobster_test_total", "h", "node", "0")
	c := r.Counter("lobster_test_total", "h", "node", "1")
	if a != b {
		t.Fatal("same series must return the same counter")
	}
	if a == c {
		t.Fatal("distinct label sets must return distinct counters")
	}
}

// TestRegistryTypeMismatchPanics checks the misuse guard.
func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("lobster_test_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("lobster_test_total", "h")
}

// TestLabelEscaping checks the exposition format's label-value escaping
// of backslash, double quote and newline.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("lobster_test_total", "h", "path", "a\\b\"c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `lobster_test_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("scrape missing escaped label line %q:\n%s", want, sb.String())
	}
}

// TestHelpEscaping checks HELP text escaping of backslash and newline.
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("lobster_test_total", "line1\nline2\\end")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lobster_test_total line1\nline2\\end`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("scrape missing escaped HELP line %q:\n%s", want, sb.String())
	}
}

// TestHistogramBuckets checks bucket assignment, cumulative
// monotonicity, and the sum/count lines.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lobster_test_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, -1} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	cum, count, sum := h.snapshot()
	if count != 5 {
		t.Fatalf("snapshot count = %d, want 5", count)
	}
	// -1 clamps into the first bucket alongside 0.005.
	want := []uint64{2, 3, 4}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (full: %v)", i, cum[i], w, cum)
		}
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative buckets not monotonic: %v", cum)
		}
	}
	if cum[len(cum)-1] > count {
		t.Fatalf("last finite bucket %d exceeds count %d", cum[len(cum)-1], count)
	}
	if math.Abs(sum-4.555) > 1e-9 {
		t.Fatalf("sum = %v, want 4.555", sum)
	}
}

// TestHistogramQuantile checks the interpolated quantile estimate: a
// uniform fill of one bucket interpolates linearly inside it, empty
// histograms report 0, and overflow ranks clamp to the last bound.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lobster_test_seconds", "latency", []float64{0.1, 0.2, 0.4, 0.8})
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty Quantile = %v, want 0", q)
	}
	// 1000 observations spread evenly across (0.2, 0.4]: the median
	// lands mid-bucket.
	for i := 0; i < 1000; i++ {
		h.Observe(0.2 + 0.2*float64(i+1)/1000)
	}
	if q := h.Quantile(0.5); math.Abs(q-0.3) > 0.02 {
		t.Fatalf("p50 = %v, want ~0.3", q)
	}
	// p999 of the same fill stays inside the bucket.
	if q := h.Quantile(0.999); q <= 0.2 || q > 0.4 {
		t.Fatalf("p999 = %v, want in (0.2, 0.4]", q)
	}
	// Overflow observations clamp the tail to the last bound.
	for i := 0; i < 9000; i++ {
		h.Observe(5)
	}
	if q := h.Quantile(0.999); q != 0.8 {
		t.Fatalf("overflow p999 = %v, want clamp to 0.8", q)
	}
	var nilH *Histogram
	if q := nilH.Quantile(0.99); q != 0 {
		t.Fatalf("nil Quantile = %v, want 0", q)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// and checks nothing is lost (the stripes must merge exactly).
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lobster_test_seconds", "latency", []float64{1, 10})
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	cum, _, sum := h.snapshot()
	if cum[0] != goroutines*per {
		t.Fatalf("bucket[le=1] = %d, want %d", cum[0], goroutines*per)
	}
	if math.Abs(sum-0.5*goroutines*per) > 1e-6 {
		t.Fatalf("sum = %v, want %v", sum, 0.5*goroutines*per)
	}
}

// TestExpBuckets checks the generated bounds are strictly increasing
// and span the requested range.
func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 24)
	if len(b) != 24 {
		t.Fatalf("got %d buckets, want 24", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, b)
		}
	}
	if b[len(b)-1] < 10 {
		t.Fatalf("last bound %v does not cover the range top 10", b[len(b)-1])
	}
}

// TestGoldenScrape locks the full exposition format for a small fixed
// registry: HELP/TYPE headers, families in name order, histogram
// expansion with +Inf, counter/gauge/func samples.
func TestGoldenScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("lobster_kv_hits_total", "Cache hits.", "shard", "0").Add(3)
	r.Gauge("lobster_rt_depth", "Queue depth.", "gpu", "1").Set(-2)
	r.GaugeFunc("lobster_rt_workers", "Workers.", func() float64 { return 4 })
	h := r.Histogram("lobster_io_seconds", "IO latency.", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(100)

	const golden = `# HELP lobster_io_seconds IO latency.
# TYPE lobster_io_seconds histogram
lobster_io_seconds_bucket{le="0.5"} 1
lobster_io_seconds_bucket{le="2"} 2
lobster_io_seconds_bucket{le="+Inf"} 3
lobster_io_seconds_sum 101.25
lobster_io_seconds_count 3
# HELP lobster_kv_hits_total Cache hits.
# TYPE lobster_kv_hits_total counter
lobster_kv_hits_total{shard="0"} 3
# HELP lobster_rt_depth Queue depth.
# TYPE lobster_rt_depth gauge
lobster_rt_depth{gpu="1"} -2
# HELP lobster_rt_workers Workers.
# TYPE lobster_rt_workers gauge
lobster_rt_workers 4
`
	var first strings.Builder
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if first.String() != golden {
		t.Fatalf("scrape does not match golden output.\ngot:\n%s\nwant:\n%s", first.String(), golden)
	}
	// Unchanged registry => byte-identical second scrape.
	var second strings.Builder
	if err := r.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if second.String() != first.String() {
		t.Fatal("second scrape of unchanged registry differs from the first")
	}
}

// TestFormatFloat covers the special values Prometheus spells out.
func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Fatalf("formatFloat(NaN) = %q, want NaN", got)
	}
}
