package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestScheduleBuildersDeriveSeeds(t *testing.T) {
	s := NewSchedule(42).
		Straggler(1, 2, 5, time.Millisecond, time.Millisecond).
		Brownout(3, 7, time.Millisecond, 0, 0.5).
		CacheCrash(0, 4, 8).
		ShardCrash(2, 1, 6).
		ConnDrop(1, 0, 3, 0.25).
		SlowDecode(0, 2, 4, time.Millisecond, 0)
	if len(s.Events) != 6 {
		t.Fatalf("events = %d, want 6", len(s.Events))
	}
	seen := map[uint64]bool{}
	for i, e := range s.Events {
		if e.Fault.Seed == 0 {
			t.Fatalf("event %d (%s) has no derived seed", i, e.Kind)
		}
		if seen[e.Fault.Seed] {
			t.Fatalf("event %d (%s) shares a derived seed", i, e.Kind)
		}
		seen[e.Fault.Seed] = true
	}
	// Same schedule seed, same construction order => same derived seeds.
	s2 := NewSchedule(42).
		Straggler(1, 2, 5, time.Millisecond, time.Millisecond).
		Brownout(3, 7, time.Millisecond, 0, 0.5)
	for i := range s2.Events {
		if s2.Events[i].Fault.Seed != s.Events[i].Fault.Seed {
			t.Fatalf("event %d seed not reproducible", i)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []Event{
		{Kind: 0, Start: 0},
		{Kind: KindSlowDecode + 1, Start: 0},
		{Kind: KindStraggler, Target: -1},
		{Kind: KindStraggler, Start: -1},
		{Kind: KindStraggler, Start: 5, End: 5},
		{Kind: KindBrownout, Fault: Fault{ErrRate: 1.5}},
		{Kind: KindConnDrop, Fault: Fault{DropRate: -0.1}},
		{Kind: KindStraggler, Fault: Fault{Lag: -time.Second}},
	}
	for i, e := range bad {
		s := &Schedule{Events: []Event{e}}
		if err := s.Validate(); err == nil {
			t.Errorf("bad event %d (%+v) passed validation", i, e)
		}
	}
}

// recorder is a test injector that logs transitions.
type recorder struct {
	log *[]string
	tag string
}

func (r recorder) Inject(e Event) error {
	*r.log = append(*r.log, fmt.Sprintf("%s+%s", r.tag, e.Kind))
	return nil
}

func (r recorder) Revert(e Event) error {
	*r.log = append(*r.log, fmt.Sprintf("%s-%s", r.tag, e.Kind))
	return nil
}

func TestControllerLifecycle(t *testing.T) {
	s := NewSchedule(7).
		Brownout(2, 4, time.Millisecond, 0, 0.5). // iters [2,4)
		CacheCrash(0, 3, 0)                       // never reverts on its own
	c, err := NewController(s)
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	c.Register(KindBrownout, recorder{&log, "b"})
	c.Register(KindCacheCrash, recorder{&log, "c"})
	for iter := 0; iter <= 6; iter++ {
		c.OnIteration(iter)
	}
	wantOrder := []string{"b+brownout", "c+cache-crash", "b-brownout"}
	if fmt.Sprint(log) != fmt.Sprint(wantOrder) {
		t.Fatalf("injector transitions = %v, want %v", log, wantOrder)
	}
	inj, rev := c.Counts()
	if inj != 2 || rev != 1 {
		t.Fatalf("counts = (%d,%d), want (2,1)", inj, rev)
	}
	// Brownout active at boundaries 2,3; cache crash from 3 on: 2..6.
	if got := c.DegradedIters(); got != 5 {
		t.Fatalf("degraded iters = %d, want 5", got)
	}
	c.Finish() // reverts the still-active cache crash
	if _, rev := c.Counts(); rev != 2 {
		t.Fatalf("reverted after Finish = %d, want 2", rev)
	}
	for _, line := range c.EventLog() {
		if !strings.HasPrefix(line, "iter=") {
			t.Fatalf("malformed log line %q", line)
		}
	}
}

func TestControllerIgnoresStaleBoundaries(t *testing.T) {
	s := NewSchedule(1).Brownout(1, 2, 0, 0, 0.1)
	c, _ := NewController(s)
	var log []string
	c.Register(KindBrownout, recorder{&log, "b"})
	c.OnIteration(3) // past the window entirely: inject is skipped (iter >= End)
	c.OnIteration(1) // stale: ignored
	if len(log) != 0 {
		t.Fatalf("stale/late boundaries caused transitions: %v", log)
	}
}

func TestControllerSkipsUnwiredKinds(t *testing.T) {
	s := NewSchedule(1).ShardCrash(0, 0, 2)
	c, _ := NewController(s)
	c.OnIteration(0)
	logd := c.EventLog()
	if len(logd) != 1 || !strings.Contains(logd[0], "skip shard-crash") {
		t.Fatalf("unwired kind not skipped: %v", logd)
	}
	if inj, _ := c.Counts(); inj != 0 {
		t.Fatalf("skip counted as injection")
	}
}

func TestRegisterDefaultDoesNotClobber(t *testing.T) {
	s := NewSchedule(1).Brownout(0, 1, 0, 0, 0.1)
	c, _ := NewController(s)
	var hard, soft []string
	c.Register(KindBrownout, recorder{&hard, "hard"})
	c.RegisterDefault(KindBrownout, recorder{&soft, "soft"}) // must not replace
	c.RegisterDefault(KindStraggler, recorder{&soft, "soft"})
	c.OnIteration(0)
	if len(hard) != 1 || len(soft) != 0 {
		t.Fatalf("RegisterDefault clobbered an explicit injector: hard=%v soft=%v", hard, soft)
	}
}

func TestControllerLogDeterministic(t *testing.T) {
	build := func() []string {
		s := NewSchedule(99).
			Straggler(1, 1, 3, time.Millisecond, 0).
			Brownout(2, 5, 0, 0, 0.3).
			CacheCrash(0, 2, 4)
		c, _ := NewController(s)
		var log []string
		for _, k := range []Kind{KindStraggler, KindBrownout, KindCacheCrash} {
			c.Register(k, recorder{&log, "x"})
		}
		for iter := 0; iter <= 6; iter++ {
			c.OnIteration(iter)
		}
		c.Finish()
		return c.EventLog()
	}
	a, b := build(), build()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("event log not deterministic:\n%v\n%v", a, b)
	}
}

func TestNewControllerRejectsBadSchedules(t *testing.T) {
	if _, err := NewController(nil); err == nil {
		t.Fatal("nil schedule accepted")
	}
	s := &Schedule{Events: []Event{{Kind: KindStraggler, Target: -2}}}
	if _, err := NewController(s); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}
