// Package kvstore implements a sharded, TCP-based in-memory key-value
// store — the "alternatives to distributed caching like for example
// KV-stores" the paper names as a drop-in substitute for its peer-cache
// distribution manager (Section 2). The online runtime can mount a
// kvstore.Cluster as its shared cache layer instead of node-to-node
// fetches.
//
// Two wire protocols share every connection, classified per frame by
// the first byte:
//
// v1 (legacy, one blocking request per round trip):
//
//	request : op(1) keyLen(u32) key valLen(u32) val
//	response: status(1) valLen(u32) val
//
// v2 (pipelined): requests carry a magic byte and a request ID so many
// ops can be in flight per connection, and MultiGet/MultiPut move a
// whole plan window in one round trip (frame layout in store.go and
// DESIGN.md §8). All lengths are big-endian.
//
// Servers bound their memory with an LRU over value bytes, striped
// across N key-hashed sub-shards so concurrent clients do not serialize
// on one mutex.
package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"sync"
)

// connBufSize sizes the per-connection bufio reader/writer. Large
// enough that a pipelined burst of small ops coalesces into one
// syscall each way.
const connBufSize = 64 << 10

// Server is one KV shard.
type Server struct {
	ln net.Listener
	st *store

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer starts a shard listening on addr ("127.0.0.1:0" for an
// ephemeral port) with the given byte capacity. The LRU stripe count is
// chosen automatically (capacities below 64 KiB per stripe collapse to
// fewer stripes, tiny shards to a single global LRU). Note the
// admission bound: striping splits the capacity, so the largest
// admissible value is capacity / Stripes(), not capacity — larger puts
// are refused with ErrTooLarge and counted in Stats.TooLarge. Size the
// capacity (or pick an explicit stripe count via NewServerStriped) so
// the per-stripe budget comfortably exceeds the largest value stored.
func NewServer(addr string, capacity int64) (*Server, error) {
	return NewServerStriped(addr, capacity, 0)
}

// NewServerStriped is NewServer with an explicit LRU stripe count
// (rounded down to a power of two; <= 0 selects automatically). One
// stripe reproduces the exact global-LRU eviction order of the v1
// store; more stripes trade that for concurrency, with the byte budget
// — and therefore the largest admissible value and the eviction
// pressure — split evenly per stripe.
func NewServerStriped(addr string, capacity int64, stripes int) (*Server, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("kvstore: capacity %d <= 0", capacity)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: listen: %w", err)
	}
	s := &Server{
		ln:     ln,
		st:     newStore(capacity, stripes),
		closed: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the shard's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stripes returns the shard's LRU stripe count.
func (s *Server) Stripes() int { return len(s.st.stripes) }

// Close stops the listener and waits for connection handlers to exit.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Stats is a shard's counter snapshot.
type Stats struct {
	Items     int
	UsedBytes int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// TooLarge counts puts refused because the value exceeded the
	// per-stripe byte budget (capacity / stripe count). Best-effort
	// writers that discard Put errors — e.g. the runtime's cache
	// write-backs — silently lose those samples from the shared tier, so
	// a growing TooLarge is the signal that values are outrunning the
	// striped admission bound and the shard needs more capacity or fewer
	// stripes.
	TooLarge uint64
}

// Stats returns a snapshot aggregated across stripes.
func (s *Server) Stats() Stats { return s.st.stats() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			// Transient accept failure: keep serving.
			continue
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// serve processes frames from one connection until it drops. Each
// frame's first byte selects the protocol: a v1 op byte or the v2
// magic. Responses are written in request order and flushed only when
// the read buffer holds no further request bytes, so a pipelined burst
// of N ops costs one write syscall, not N.
func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	r := bufio.NewReaderSize(conn, connBufSize)
	w := bufio.NewWriterSize(conn, connBufSize)
	for {
		first, err := r.ReadByte()
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		if first == frameV2Magic {
			err = s.st.handleV2(r, w)
		} else {
			err = s.st.handleV1(first, r, w)
		}
		if err != nil {
			return
		}
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}
