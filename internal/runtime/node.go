package runtime

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/kvstore"
	"repro/internal/loader"
	"repro/internal/obs"
	"repro/internal/preproc"
)

// nodeCache pairs the policy-managed membership cache with the payload
// store, behind one mutex, and keeps the distributed directory consistent
// with local contents.
type nodeCache struct {
	mu       sync.Mutex
	node     int
	c        *cache.Cache
	payloads map[dataset.SampleID][]byte
	dir      *Directory
}

func newNodeCache(node int, capacity int64, policy cache.Policy, dir *Directory) (*nodeCache, error) {
	c, err := cache.New(capacity, policy)
	if err != nil {
		return nil, err
	}
	return &nodeCache{
		node:     node,
		c:        c,
		payloads: make(map[dataset.SampleID][]byte),
		dir:      dir,
	}, nil
}

// get returns the cached payload and records the hit/miss.
func (nc *nodeCache) get(id dataset.SampleID, now cache.Iter) ([]byte, bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.c.Get(id, now) {
		return nc.payloads[id], true
	}
	return nil, false
}

// peek returns the payload without touching stats (peer reads must not
// perturb the owner's hit accounting, Section 5.5 measures per-node cache
// hits).
func (nc *nodeCache) peek(id dataset.SampleID) ([]byte, bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	p, ok := nc.payloads[id]
	return p, ok
}

// peekBatch fills out[i] with whether ids[i] is resident, taking the
// cache lock once for the whole batch. Like peek it does not touch the
// hit/miss stats.
func (nc *nodeCache) peekBatch(ids []dataset.SampleID, out []bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	for i, id := range ids {
		_, out[i] = nc.payloads[id]
	}
}

// put inserts a payload (policy permitting) and syncs the directory.
func (nc *nodeCache) put(id dataset.SampleID, payload []byte, now cache.Iter) bool {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.c.Contains(id) {
		return true
	}
	evicted, ok := nc.c.Put(id, int64(len(payload)), now)
	for _, ev := range evicted {
		delete(nc.payloads, ev)
		nc.dir.Remove(nc.node, ev)
	}
	if ok {
		nc.payloads[id] = payload
		nc.dir.Add(nc.node, id)
	}
	return ok
}

// maintain runs proactive policy evictions.
func (nc *nodeCache) maintain(now cache.Iter) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	for _, ev := range nc.c.Maintain(now) {
		delete(nc.payloads, ev)
		nc.dir.Remove(nc.node, ev)
	}
}

func (nc *nodeCache) stats() cache.Stats {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.c.Stats()
}

// loadRequest asks a loading worker to materialize one sample for one GPU.
type loadRequest struct {
	id   dataset.SampleID
	seed uint64
	out  chan<- preproc.Result
}

// gpuQueue is the per-GPU request queue of Section 4.2 with a resizable
// worker set — "a separate request queue for each GPU, each of which can
// be assigned a different number of threads".
type gpuQueue struct {
	reqs    chan loadRequest
	node    *nodeRuntime
	label   string // trace track-name prefix, "node<n>/gpu<j>"
	mu      sync.Mutex
	target  int
	stops   chan struct{}
	wg      *sync.WaitGroup
	pending atomic.Int64

	// tidFree recycles trace thread IDs across worker generations so
	// per-iteration resizing does not mint unbounded trace tracks.
	tidMu   sync.Mutex
	tidFree []int64
	tidSeq  int
}

func newGPUQueue(node *nodeRuntime, gpu, workers int, wg *sync.WaitGroup) *gpuQueue {
	q := &gpuQueue{
		reqs:  make(chan loadRequest, 1024),
		node:  node,
		label: fmt.Sprintf("node%d/gpu%d", node.node, gpu),
		stops: make(chan struct{}, 256),
		wg:    wg,
	}
	q.resize(workers)
	return q
}

// takeTID leases a trace track for one loading worker, reusing
// returned IDs before minting new ones.
func (q *gpuQueue) takeTID(tr *obs.TraceRing) int64 {
	q.tidMu.Lock()
	if n := len(q.tidFree); n > 0 {
		tid := q.tidFree[n-1]
		q.tidFree = q.tidFree[:n-1]
		q.tidMu.Unlock()
		return tid
	}
	q.tidSeq++
	seq := q.tidSeq
	q.tidMu.Unlock()
	return tr.NewThread(fmt.Sprintf("%s/loader%d", q.label, seq))
}

func (q *gpuQueue) putTID(tid int64) {
	if tid == 0 {
		return
	}
	q.tidMu.Lock()
	q.tidFree = append(q.tidFree, tid)
	q.tidMu.Unlock()
}

func (q *gpuQueue) submit(r loadRequest) {
	q.pending.Add(1)
	q.reqs <- r
}

func (q *gpuQueue) resize(n int) {
	if n < 1 {
		n = 1
	}
	q.mu.Lock()
	for q.target < n {
		q.target++
		q.wg.Add(1)
		go q.worker()
	}
	shrink := 0
	for q.target > n {
		q.target--
		shrink++
	}
	q.mu.Unlock()
	// Deliver stop tokens after releasing the lock: a full stops channel
	// must stall only this caller, not everyone contending for q.mu.
	for ; shrink > 0; shrink-- {
		q.stops <- struct{}{}
	}
}

func (q *gpuQueue) workers() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.target
}

func (q *gpuQueue) worker() {
	defer q.wg.Done()
	var tid int64
	defer func() { q.putTID(tid) }()
	for {
		select {
		case <-q.stops:
			return
		case r, ok := <-q.reqs:
			if !ok {
				return
			}
			if tid == 0 {
				if ro := q.node.rt.ro; ro != nil && ro.trace != nil {
					tid = q.takeTID(ro.trace)
				}
			}
			q.node.load(r, tid)
			q.pending.Add(-1)
		}
	}
}

// nodeRuntime is everything co-located on one node.
type nodeRuntime struct {
	node    int
	rt      *Runtime
	cache   *nodeCache
	queues  []*gpuQueue
	pre     *preproc.Pool
	plan    *access.Plan
	iterNow atomic.Int32 // current global iteration (policy timestamps)

	remoteHits atomic.Uint64
	pfsReads   atomic.Uint64
	prefetched atomic.Uint64
	pfsRetries atomic.Uint64

	// loadHist times each sample materialization (runtimeObs; nil when
	// un-instrumented — nil-safe to observe).
	loadHist *obs.Histogram

	loadWG   sync.WaitGroup
	serverWG sync.WaitGroup
	prefWG   sync.WaitGroup
	stopPref chan struct{}
}

// load materializes one sample: local cache, else peer cache, else PFS —
// then hands it to preprocessing. This is the Equation 1 path, executed
// for real. tid is the worker's trace track (0 when untraced).
func (n *nodeRuntime) load(r loadRequest, tid int64) {
	ro := n.rt.ro
	rec := ro != nil && (ro.trace != nil || n.loadHist.On())
	var start time.Time
	if rec {
		start = time.Now()
	}
	now := cache.Iter(n.iterNow.Load())
	payload, ok := n.cache.get(r.id, now)
	if !ok {
		payload = n.fetchMiss(r.id, now)
	}
	if rec {
		d := time.Since(start)
		n.loadHist.Observe(d.Seconds())
		if tid != 0 {
			ro.trace.SpanArgs("load", "io", tid, start, d, "sample", int64(r.id), "", 0)
		}
	}
	n.pre.Submit(preproc.Job{ID: r.id, Payload: payload, Seed: r.seed, Done: r.out})
}

// fetchMiss pulls a missing sample from the shared cache tier (peer
// caches via the distribution manager, or a KV cluster when configured)
// or the PFS, and caches it locally.
func (n *nodeRuntime) fetchMiss(id dataset.SampleID, now cache.Iter) []byte {
	if n.rt.kv != nil {
		if payload, found, err := n.rt.kv.Get(kvKey(id)); err == nil && found {
			n.remoteHits.Add(1)
			n.cache.put(id, payload, now)
			return payload
		}
	} else if peer := n.rt.dir.Holder(id, n.node); peer >= 0 {
		if payload := n.rt.dm.Fetch(peer, id, n.rt.ds.Size(id)); payload != nil {
			n.remoteHits.Add(1)
			n.cache.put(id, payload, now)
			return payload
		}
	}
	payload := n.pfsReadRetry(id)
	n.pfsReads.Add(1)
	n.cache.put(id, payload, now)
	if n.rt.kv != nil {
		// Write-back so other nodes find it in the shared tier; the
		// cluster's own LRU bounds its memory.
		_ = n.rt.kv.Put(kvKey(id), payload)
	}
	return payload
}

// pfsReadRetry reads from the PFS, retrying transient failures with
// capped exponential backoff. Training cannot proceed without the sample,
// so the loop is unbounded — matching real loaders, which surface storage
// outages as hangs rather than corrupt batches. Retries are counted for
// the failure-injection diagnostics.
func (n *nodeRuntime) pfsReadRetry(id dataset.SampleID) []byte {
	backoff := time.Millisecond
	for {
		payload, err := n.rt.pfs.Read(id)
		if err == nil {
			return payload
		}
		if err != ErrTransient {
			// Unreachable for in-range ids; surface loudly if it happens.
			panic(fmt.Sprintf("runtime: PFS read failed: %v", err))
		}
		n.pfsRetries.Add(1)
		time.Sleep(backoff)
		if backoff < 16*time.Millisecond {
			backoff *= 2
		}
	}
}

// kvKey renders a sample's cluster key.
func kvKey(id dataset.SampleID) string {
	return "sample/" + strconv.FormatUint(uint64(id), 10)
}

// serveRemote answers peer-cache fetches until the inbox closes.
func (n *nodeRuntime) serveRemote() {
	defer n.serverWG.Done()
	for req := range n.rt.dm.Inbox(n.node) {
		payload, ok := n.cache.peek(req.id)
		if !ok {
			payload = nil
		}
		req.reply <- payload
	}
}

// prefetcher walks the node's future accesses, keeping the cache filled
// ahead of training. It runs in its own (small) worker set so it competes
// with demand loading for storage bandwidth exactly as real background
// prefetching does.
func (n *nodeRuntime) prefetcher(workers, depthIters int) {
	for w := 0; w < workers; w++ {
		w := w
		n.prefWG.Add(1)
		go func() {
			defer n.prefWG.Done()
			var ptid int64
			if ro := n.rt.ro; ro != nil && ro.trace != nil {
				ptid = ro.trace.NewThread(fmt.Sprintf("node%d/prefetch%d", n.node, w))
			}
			cursor := access.Iter(0)
			var batch []dataset.SampleID
			for {
				select {
				case <-n.stopPref:
					return
				default:
				}
				now := access.Iter(n.iterNow.Load())
				if cursor <= now {
					cursor = now + 1
				}
				if cursor > now+access.Iter(depthIters) || int(cursor) >= int(n.rt.totalIters) {
					// Caught up: yield briefly.
					select {
					case <-n.stopPref:
						return
					case <-n.rt.tick:
					}
					continue
				}
				epoch := int(cursor) / n.rt.itersPerEpoch
				it := int(cursor) % n.rt.itersPerEpoch
				batch = n.rt.sched.NodeBatch(batch[:0], epoch, it, n.node, n.rt.gpus)
				var wstart time.Time
				var before uint64
				if ptid != 0 {
					wstart, before = time.Now(), n.prefetched.Load()
				}
				if n.rt.kv != nil {
					n.prefetchWindowKV(batch)
				} else {
					for _, id := range batch {
						select {
						case <-n.stopPref:
							return
						default:
						}
						nowC := cache.Iter(n.iterNow.Load())
						if _, ok := n.cache.peek(id); ok {
							continue
						}
						payload := n.fetchPrefetch(id, nowC)
						if payload == nil {
							break // cache refused: later candidates are needed later
						}
						n.prefetched.Add(1)
					}
				}
				if ptid != 0 {
					n.rt.ro.trace.SpanArgs("prefetch_window", "io", ptid,
						wstart, time.Since(wstart),
						"iter", int64(cursor), "fetched", int64(n.prefetched.Load()-before))
				}
				cursor++
			}
		}()
	}
}

// prefetchWindowKV fills the cache for one plan window through the KV
// cluster: the window's misses are fetched in a single MultiGet round
// trip per shard, and every PFS fallback read is written back to the
// cluster in one batched MultiPut. Semantics match the per-id path:
// a KV hit counts only toward prefetched, a PFS fallback also counts a
// PFS read, and a local-cache refusal abandons the rest of the window
// (later candidates are needed later).
func (n *nodeRuntime) prefetchWindowKV(batch []dataset.SampleID) {
	resident := make([]bool, len(batch))
	n.cache.peekBatch(batch, resident)
	need := batch[:0:0]
	var keys []string
	for i, id := range batch {
		if !resident[i] {
			need = append(need, id)
			keys = append(keys, kvKey(id))
		}
	}
	if len(need) == 0 {
		return
	}
	vals, err := n.rt.kv.MultiGet(keys)
	if err != nil {
		// A partial fan-out failure still returns the healthy shards'
		// values (failed shards' entries are nil, i.e. misses); anything
		// else degrades the whole window to misses.
		var pe *kvstore.PartialError
		if !errors.As(err, &pe) {
			vals = nil
		}
	}
	// Write-backs accumulate across the loop and flush in one MultiPut,
	// including when a cache refusal abandons the window early.
	var wbKeys []string
	var wbVals [][]byte
	defer func() {
		if len(wbKeys) > 0 {
			_ = n.rt.kv.MultiPut(wbKeys, wbVals) // best-effort, like the per-id write-back
		}
	}()
	for i, id := range need {
		select {
		case <-n.stopPref:
			return
		default:
		}
		now := cache.Iter(n.iterNow.Load())
		var payload []byte
		if vals != nil && vals[i] != nil {
			payload = vals[i]
		} else {
			payload = n.pfsReadRetry(id)
			n.pfsReads.Add(1)
			wbKeys = append(wbKeys, keys[i])
			wbVals = append(wbVals, payload)
		}
		if !n.cache.put(id, payload, now) {
			return // cache refused: later candidates are needed later
		}
		n.prefetched.Add(1)
	}
}

// fetchPrefetch fetches a sample for the cache only; returns nil if the
// cache policy refused the insert.
func (n *nodeRuntime) fetchPrefetch(id dataset.SampleID, now cache.Iter) []byte {
	size := n.rt.ds.Size(id)
	var payload []byte
	if n.rt.kv != nil {
		if p, found, err := n.rt.kv.Get(kvKey(id)); err == nil && found {
			payload = p
		}
	} else if peer := n.rt.dir.Holder(id, n.node); peer >= 0 {
		payload = n.rt.dm.Fetch(peer, id, size)
	}
	if payload == nil {
		payload = n.pfsReadRetry(id)
		n.pfsReads.Add(1)
		if n.rt.kv != nil {
			_ = n.rt.kv.Put(kvKey(id), payload)
		}
	}
	if !n.cache.put(id, payload, now) {
		return nil
	}
	return payload
}

// buildNodePolicy instantiates the strategy's cache policy for this node.
func buildNodePolicy(spec loader.Spec, plan *access.Plan, node int, dir *Directory) cache.Policy {
	return spec.BuildPolicy(plan, func(id dataset.SampleID) bool {
		return dir.IsLastCopy(node, id)
	})
}
