package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilPoolRunsSerially(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	var order []int
	err := p.ForEach(5, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v, want ascending", order)
		}
	}
}

func TestMapSlotsResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		got, err := Map(p, 64, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		err := p.ForEach(16, func(i int) error {
			if i == 3 || i == 11 {
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3" {
			t.Fatalf("workers=%d: err = %v, want item 3", workers, err)
		}
	}
}

func TestAllItemsRunDespiteErrors(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int64
	err := p.ForEach(32, func(i int) error {
		ran.Add(1)
		return errors.New("x")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 32 {
		t.Fatalf("ran %d items, want all 32", got)
	}
}

// TestBoundedConcurrency verifies the pool's W bound holds across nested
// fan-outs sharing it: the caller always participates and extras only run
// on spare tokens, so active item executions never exceed W.
func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var active, peak atomic.Int64
	body := func() {
		a := active.Add(1)
		for {
			cur := peak.Load()
			if a <= cur || peak.CompareAndSwap(cur, a) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		active.Add(-1)
	}
	err := p.ForEach(6, func(i int) error {
		// Nested fan-out through the same pool.
		return p.ForEach(4, func(j int) error {
			body()
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds pool bound %d", got, workers)
	}
}

// TestNestedFanOutCompletes would deadlock if fan-outs queued for tokens
// instead of degrading to caller-only execution.
func TestNestedFanOutCompletes(t *testing.T) {
	p := NewPool(2)
	done := make(chan struct{})
	//lint:allow goroutine closes done when the bounded fan-out returns; the select below times out at 30s if it deadlocks
	go func() {
		defer close(done)
		_ = p.ForEach(8, func(i int) error {
			return p.ForEach(8, func(j int) error {
				return p.ForEach(2, func(k int) error { return nil })
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested fan-out did not complete")
	}
}

// TestTokensReturned checks the pool recovers its full width after heavy
// use: a later wide fan-out can still recruit extras.
func TestTokensReturned(t *testing.T) {
	p := NewPool(4)
	for round := 0; round < 50; round++ {
		if err := p.ForEach(9, func(i int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(p.spare); got != p.workers-1 {
		t.Fatalf("spare tokens after drain = %d, want %d", got, p.workers-1)
	}
}

// TestResultVisibility exercises the happens-before edge from item
// completion to ForEach return under the race detector.
func TestResultVisibility(t *testing.T) {
	p := NewPool(8)
	results := make([]int, 128)
	var mu sync.Mutex // not needed for distinct indices; guards the check below
	if err := p.ForEach(128, func(i int) error {
		results[i] = i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range results {
		if v != i+1 {
			t.Fatalf("results[%d] = %d not visible", i, v)
		}
	}
}
