// Package sim provides a small discrete-event simulation engine with a
// virtual clock, an event heap, and capacity-limited resources.
//
// The Lobster planner is, per the paper, "based on a simulator" (Section
// 4.5). This package is the engine underneath that planner: experiments run
// in virtual time, so a 50-epoch, 64-GPU training campaign replays in
// seconds on one core while preserving the ordering and contention effects
// the paper measures.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds.
type Time float64

// Infinity is a virtual time later than any event.
const Infinity Time = Time(math.MaxFloat64)

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among simultaneous events
	fn   func()
	heap int // index in the heap, for removal
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heap = i
	h[j].heap = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.heap = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending event set. It is not safe
// for concurrent use: simulations are single-goroutine by design (their
// determinism is a feature, mirroring the deterministic access order the
// paper exploits).
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	ran    uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsRun returns the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending returns the number of scheduled, not-yet-run events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	ev *event
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return Handle{ev: ev}
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-run or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(h Handle) bool {
	if h.ev == nil || h.ev.dead {
		return false
	}
	h.ev.dead = true
	return true
}

// Step runs the earliest pending event, advancing the clock to its time.
// It returns false if no events remain.
//
//lint:hotpath the event dispatch loop runs millions of times per campaign; allocation here dominates simulation wall time
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.ran++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty and returns the final time.
//
//lint:hotpath the event dispatch loop runs millions of times per campaign; allocation here dominates simulation wall time
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with time <= deadline, then sets the clock to
// the deadline (if it has not passed it already) and returns it.
//
//lint:hotpath the event dispatch loop runs millions of times per campaign; allocation here dominates simulation wall time
func (e *Engine) RunUntil(deadline Time) Time {
	for {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

func (e *Engine) peek() (Time, bool) {
	for len(e.events) > 0 {
		if e.events[0].dead {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0].at, true
	}
	return 0, false
}
