package numa

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestAssignValidation(t *testing.T) {
	if _, err := Assign(0, 4, []int{1}, 1, true); err == nil {
		t.Error("zero domains accepted")
	}
	if _, err := Assign(2, 0, []int{1}, 1, true); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestAwarePlacementCoLocates(t *testing.T) {
	// 8 GPUs x 2 loading threads + 6 preproc on 2 domains of 12 slots.
	loading := []int{2, 2, 2, 2, 2, 2, 2, 2}
	p, err := Assign(2, 12, loading, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	// GPUs 0-3 on domain 0, GPUs 4-7 on domain 1.
	for j := 0; j < 4; j++ {
		if p.LoadingDomain[j][0] != 2 || p.LoadingDomain[j][1] != 0 {
			t.Fatalf("GPU %d placement %v, want domain 0", j, p.LoadingDomain[j])
		}
	}
	for j := 4; j < 8; j++ {
		if p.LoadingDomain[j][1] != 2 {
			t.Fatalf("GPU %d placement %v, want domain 1", j, p.LoadingDomain[j])
		}
	}
	// Preprocessing split evenly (loading is even).
	if p.PreprocDomain[0] != 3 || p.PreprocDomain[1] != 3 {
		t.Fatalf("preproc placement %v, want [3 3]", p.PreprocDomain)
	}
	// Balanced bytes => no cross traffic.
	bytes := make([]int64, 8)
	for j := range bytes {
		bytes[j] = 1000
	}
	if f := CrossTrafficFraction(p, bytes); f > 1e-9 {
		t.Fatalf("aware placement crosses %.3f of traffic, want 0", f)
	}
}

func TestNaivePlacementCrosses(t *testing.T) {
	// Naive: 16 loading threads fill domain 0 (12 slots) and spill 4 onto
	// domain 1; the 6 preproc threads land after the loading spill.
	loading := []int{2, 2, 2, 2, 2, 2, 2, 2}
	p, err := Assign(2, 12, loading, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	bytes := make([]int64, 8)
	for j := range bytes {
		bytes[j] = 1000
	}
	f := CrossTrafficFraction(p, bytes)
	if f <= 0.1 {
		t.Fatalf("naive placement crosses only %.3f of traffic; expected substantial crossing", f)
	}
	// The aware placement must strictly beat it.
	aware, _ := Assign(2, 12, loading, 6, true)
	if fa := CrossTrafficFraction(aware, bytes); fa >= f {
		t.Fatalf("aware %.3f not below naive %.3f", fa, f)
	}
}

func TestSingleDomainNoCrossing(t *testing.T) {
	p, err := Assign(1, 24, []int{2, 2}, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	if f := CrossTrafficFraction(p, []int64{100, 100}); f != 0 {
		t.Fatalf("single domain crossed %.3f", f)
	}
}

func TestPenaltyShape(t *testing.T) {
	if Penalty(0) != 1 {
		t.Fatal("zero crossing must be penalty-free")
	}
	if p := Penalty(1); p >= 1 || p < 0.5 {
		t.Fatalf("full crossing penalty %.3f outside (0.5, 1)", p)
	}
	// More crossing => lower throughput factor.
	if Penalty(0.5) >= Penalty(0.2) {
		t.Fatal("penalty not monotone decreasing in cross traffic")
	}
}

func TestCrossTrafficProperties(t *testing.T) {
	f := func(seed uint64, gpusRaw, domRaw uint8, aware bool) bool {
		gpus := int(gpusRaw%8) + 1
		domains := int(domRaw%4) + 1
		loading := make([]int, gpus)
		bytes := make([]int64, gpus)
		for j := range loading {
			loading[j] = int(seed>>uint(j)%3) + 1
			bytes[j] = int64(1000 + j*137)
		}
		p, err := Assign(domains, 8, loading, 6, aware)
		if err != nil {
			return false
		}
		frac := CrossTrafficFraction(p, bytes)
		if frac < -1e-9 || frac > 1+1e-9 {
			return false
		}
		// Total preproc and loading threads are conserved.
		pre := 0
		for _, n := range p.PreprocDomain {
			pre += n
		}
		if pre != 6 {
			return false
		}
		for j := range loading {
			sum := 0
			for _, n := range p.LoadingDomain[j] {
				sum += n
			}
			if sum != loading[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAwareWinsOnAverage: aware placement is a heuristic — with uneven
// per-GPU byte loads a lucky naive packing can occasionally cross less —
// but across random workloads that do not fit one socket it must win
// decisively in aggregate and rarely lose by much.
func TestAwareWinsOnAverage(t *testing.T) {
	r := stats.NewRNG(99)
	var sumAware, sumNaive float64
	losses, cases := 0, 0
	for trial := 0; trial < 500; trial++ {
		gpus := r.Intn(6) + 3
		loading := make([]int, gpus)
		bytes := make([]int64, gpus)
		total := 0
		for j := range loading {
			loading[j] = r.Intn(3) + 2
			total += loading[j]
			bytes[j] = int64(500 + r.Intn(2000))
		}
		const perDomain = 8
		if total+6 <= perDomain {
			continue
		}
		aware, err := Assign(2, perDomain, loading, 6, true)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := Assign(2, perDomain, loading, 6, false)
		if err != nil {
			t.Fatal(err)
		}
		fa := CrossTrafficFraction(aware, bytes)
		fn := CrossTrafficFraction(naive, bytes)
		sumAware += fa
		sumNaive += fn
		if fa > fn+0.05 {
			losses++
		}
		cases++
	}
	if cases == 0 {
		t.Fatal("no oversubscribed cases sampled")
	}
	t.Logf("mean cross traffic: aware %.3f vs naive %.3f over %d cases (losses beyond 5pp: %d)",
		sumAware/float64(cases), sumNaive/float64(cases), cases, losses)
	if sumAware >= sumNaive*0.7 {
		t.Fatalf("aware placement (%.3f mean) not clearly below naive (%.3f mean)",
			sumAware/float64(cases), sumNaive/float64(cases))
	}
	if losses*10 > cases {
		t.Fatalf("aware lost by >5pp in %d/%d cases", losses, cases)
	}
}

func TestAwareFitsOneSocketPacks(t *testing.T) {
	p, err := Assign(2, 24, []int{1, 1}, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.LoadingDomain[0][0] != 1 || p.LoadingDomain[1][0] != 1 || p.PreprocDomain[0] != 4 {
		t.Fatalf("small pipeline not packed onto one socket: %+v", p)
	}
	if f := CrossTrafficFraction(p, []int64{100, 100}); f != 0 {
		t.Fatalf("packed placement crosses %.3f", f)
	}
}

func TestOversubscriptionStaysDefined(t *testing.T) {
	// More threads than slots: placement must still conserve counts.
	p, err := Assign(2, 2, []int{5, 5}, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range []int{5, 5} {
		sum := 0
		for _, n := range p.LoadingDomain[j] {
			sum += n
		}
		if sum != want {
			t.Fatalf("GPU %d lost threads: %v", j, p.LoadingDomain[j])
		}
	}
	f := CrossTrafficFraction(p, []int64{100, 100})
	if math.IsNaN(f) || f < 0 || f > 1 {
		t.Fatalf("cross fraction %v", f)
	}
}
