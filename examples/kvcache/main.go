// Kvcache: the paper notes Lobster "works in general for other DNN
// training scenarios as well (e.g., ... alternatives to distributed
// caching like for example KV-stores)". This example swaps the
// node-to-node distribution manager for a sharded TCP key-value cluster:
// three real KV servers on loopback become the shared cache tier between
// the node caches and the PFS, and the same verified online training runs
// on top.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/runtime"
)

func main() {
	// Start three KV shards (real TCP servers, ephemeral ports).
	var addrs []string
	var servers []*kvstore.Server
	for i := 0; i < 3; i++ {
		s, err := kvstore.NewServer("127.0.0.1:0", 64<<20)
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	cluster, err := kvstore.NewCluster(addrs, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Println("KV cluster shards:")
	for i, a := range addrs {
		fmt.Printf("  shard %d at %s\n", i, a)
	}

	cfg, err := core.NewConfig(core.Workload{
		Dataset:  "imagenet-1k",
		Scale:    "tiny",
		Model:    "resnet50",
		Nodes:    2,
		Epochs:   2,
		Strategy: "lobster",
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := runtime.Run(runtime.Options{
		Topology:  cfg.Pipeline.Topology,
		Dataset:   cfg.Pipeline.Dataset,
		Model:     cfg.Pipeline.Model,
		Epochs:    cfg.Pipeline.Epochs,
		Seed:      cfg.Pipeline.Seed,
		Strategy:  cfg.Pipeline.Strategy,
		TimeScale: 0.002,
		KVCache:   cluster,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("training done in %v: %d samples, all verified: %v\n",
		stats.WallTime, stats.SamplesLoaded, stats.SamplesVerified == stats.SamplesLoaded)
	fmt.Printf("local hit ratio %.1f%%, KV-tier hits %d, PFS reads %d\n",
		stats.HitRatio()*100, stats.RemoteHits, stats.PFSReads)

	st, err := cluster.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d items, %.1f MB, %d hits, %d misses, %d evictions\n",
		st.Items, float64(st.UsedBytes)/1e6, st.Hits, st.Misses, st.Evictions)
	for i, s := range servers {
		ss := s.Stats()
		fmt.Printf("  shard %d: %d items, %d hits\n", i, ss.Items, ss.Hits)
	}
}
