package distcache

import (
	"testing"

	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/sampler"
	"repro/internal/tier"
)

func newGroup(t *testing.T, nodes int, capacity int64) *Group {
	t.Helper()
	caches := make([]*cache.Cache, nodes)
	for i := range caches {
		c, err := cache.New(capacity, cache.NewLRU())
		if err != nil {
			t.Fatal(err)
		}
		caches[i] = c
	}
	g, err := NewGroup(caches, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(nil, 10); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewGroup([]*cache.Cache{nil}, 10); err == nil {
		t.Error("nil cache accepted")
	}
	c, _ := cache.New(10, cache.NewLRU())
	if _, err := NewGroup([]*cache.Cache{c}, 0); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestLocateThreeTiers(t *testing.T) {
	g := newGroup(t, 2, 100)
	if got := g.Locate(0, 1); got != tier.PFS {
		t.Fatalf("uncached sample located at %v, want pfs", got)
	}
	g.Put(1, 1, 10, 0)
	if got := g.Locate(0, 1); got != tier.Remote {
		t.Fatalf("peer-cached sample located at %v, want remote", got)
	}
	g.Put(0, 1, 10, 0)
	if got := g.Locate(0, 1); got != tier.Local {
		t.Fatalf("locally cached sample located at %v, want local", got)
	}
}

func TestGetRecordsStatsOnOwnNode(t *testing.T) {
	g := newGroup(t, 2, 100)
	g.Put(1, 1, 10, 0)
	if got := g.Get(0, 1, 1); got != tier.Remote {
		t.Fatalf("Get = %v, want remote", got)
	}
	// Node 0 counted a miss, node 1 must be untouched.
	if s := g.Cache(0).Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("node 0 stats = %+v", s)
	}
	if s := g.Cache(1).Stats(); s.Misses != 0 || s.Hits != 0 {
		t.Fatalf("node 1 stats = %+v (remote lookup must not count)", s)
	}
}

func TestReplicaCounting(t *testing.T) {
	g := newGroup(t, 3, 100)
	g.Put(0, 7, 10, 0)
	g.Put(1, 7, 10, 0)
	if got := g.ReplicaCount(7); got != 2 {
		t.Fatalf("replicas = %d, want 2", got)
	}
	g.Remove(0, 7)
	if got := g.ReplicaCount(7); got != 1 {
		t.Fatalf("after remove, replicas = %d, want 1", got)
	}
	if g.Remove(0, 7) {
		t.Fatal("double remove succeeded")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePutDoesNotDoubleCount(t *testing.T) {
	g := newGroup(t, 1, 100)
	g.Put(0, 3, 10, 0)
	g.Put(0, 3, 10, 1)
	if got := g.ReplicaCount(3); got != 1 {
		t.Fatalf("replicas = %d after duplicate put, want 1", got)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionUpdatesReplicas(t *testing.T) {
	g := newGroup(t, 2, 20)
	g.Put(0, 1, 10, 0)
	g.Put(0, 2, 10, 1)
	g.Put(0, 3, 10, 2) // evicts 1 (LRU)
	if got := g.ReplicaCount(1); got != 0 {
		t.Fatalf("evicted sample still counted: %d", got)
	}
	if got := g.Locate(1, 1); got != tier.PFS {
		t.Fatalf("evicted sample located at %v, want pfs", got)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectedPutNotCounted(t *testing.T) {
	caches := []*cache.Cache{}
	c, _ := cache.New(20, cache.NewNeverEvict())
	caches = append(caches, c)
	g, _ := NewGroup(caches, 100)
	g.Put(0, 1, 10, 0)
	g.Put(0, 2, 10, 0)
	if ok := g.Put(0, 3, 10, 0); ok {
		t.Fatal("never-evict admitted over capacity")
	}
	if got := g.ReplicaCount(3); got != 0 {
		t.Fatalf("rejected sample counted: %d", got)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIsLastCopy(t *testing.T) {
	g := newGroup(t, 2, 100)
	isLast0 := g.IsLastCopy(0)
	g.Put(0, 5, 10, 0)
	if !isLast0(5) {
		t.Fatal("sole copy on node 0 not reported as last")
	}
	g.Put(1, 5, 10, 0)
	if isLast0(5) {
		t.Fatal("replicated sample reported as last copy")
	}
	g.Remove(0, 5)
	if isLast0(5) {
		t.Fatal("sample not on node 0 reported as its last copy")
	}
}

func TestMaintainWithLobsterPolicyUpdatesReplicas(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{
		Name: "g", NumSamples: 200, MeanSize: 10, Classes: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sampler.New(ds, sampler.Config{WorldSize: 2, BatchSize: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 2
	plans := make([]*access.Plan, 2)
	caches := make([]*cache.Cache, 2)
	var g *Group
	for n := 0; n < 2; n++ {
		p, err := access.Build(s, n, 1, epochs, 0)
		if err != nil {
			t.Fatal(err)
		}
		plans[n] = p
	}
	for n := 0; n < 2; n++ {
		n := n
		c, err := cache.New(ds.TotalBytes(), cache.NewLobster(plans[n], cache.LobsterOptions{
			IsLastCopy: func(id dataset.SampleID) bool { return g.IsLastCopy(n)(id) },
		}))
		if err != nil {
			t.Fatal(err)
		}
		caches[n] = c
	}
	g, err = NewGroup(caches, ds.Len())
	if err != nil {
		t.Fatal(err)
	}
	// Replay both nodes' streams; Maintain after each iteration.
	var batch []dataset.SampleID
	for epoch := 0; epoch < epochs; epoch++ {
		for it := 0; it < s.IterationsPerEpoch(); it++ {
			now := cache.Iter(epoch*s.IterationsPerEpoch() + it)
			for n := 0; n < 2; n++ {
				batch = s.NodeBatch(batch[:0], epoch, it, n, 1)
				for _, id := range batch {
					if g.Get(n, id, now) != tier.Local {
						g.Put(n, id, ds.Size(id), now)
					}
				}
				g.Maintain(n, now)
			}
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	agg := g.AggregateStats()
	if agg.Hits+agg.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}
