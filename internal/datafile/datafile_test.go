package datafile

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func testFile(t *testing.T) (string, *dataset.Dataset, uint64) {
	t.Helper()
	const seed = 33
	ds, err := dataset.Generate(dataset.Spec{
		Name: "df", NumSamples: 200, MeanSize: 4 << 10, SigmaLog: 0.5,
		MinSize: 64, Classes: 3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.lobster")
	if err := Write(path, ds, seed); err != nil {
		t.Fatal(err)
	}
	return path, ds, seed
}

func TestWriteOpenRoundTrip(t *testing.T) {
	path, ds, seed := testFile(t)
	r, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != ds.Len() {
		t.Fatalf("Len = %d, want %d", r.Len(), ds.Len())
	}
	if r.Seed() != seed {
		t.Fatalf("Seed = %d, want %d", r.Seed(), seed)
	}
	for i := 0; i < ds.Len(); i++ {
		id := dataset.SampleID(i)
		sz, err := r.Size(id)
		if err != nil {
			t.Fatal(err)
		}
		if sz != ds.Size(id) {
			t.Fatalf("sample %d size %d, want %d", i, sz, ds.Size(id))
		}
		payload, err := r.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := dataset.VerifyPayload(payload, seed, id); err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(path, []byte("NOTLOBSTERFILE..................."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, false); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing"), false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestOpenRejectsTruncatedIndex(t *testing.T) {
	path, _, _ := testFile(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc")
	if err := os.WriteFile(trunc, data[:40], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(trunc, false); err == nil {
		t.Fatal("truncated index accepted")
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	path, _, _ := testFile(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte deep in the data section.
	data[len(data)-10] ^= 0xFF
	corrupt := filepath.Join(t.TempDir(), "corrupt")
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(corrupt, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Verify(); err == nil {
		t.Fatal("corruption not detected by Verify")
	}
	// Without verification the read succeeds (caller's choice).
	r2, err := Open(corrupt, false)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if err := r2.Verify(); err != nil {
		t.Fatal("unverified reader should not check CRCs")
	}
}

func TestReadOutOfRange(t *testing.T) {
	path, ds, _ := testFile(t)
	r, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Read(dataset.SampleID(ds.Len())); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := r.Size(-1); err == nil {
		t.Fatal("negative id accepted")
	}
}

func TestWriteDeterministic(t *testing.T) {
	path1, ds, seed := testFile(t)
	path2 := filepath.Join(t.TempDir(), "again")
	if err := Write(path2, ds, seed); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(path1)
	b, _ := os.ReadFile(path2)
	if len(a) != len(b) {
		t.Fatalf("file sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("files differ at byte %d", i)
		}
	}
}

func TestConcurrentReads(t *testing.T) {
	path, ds, seed := testFile(t)
	r, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		//lint:allow goroutine each worker sends exactly one result on the buffered done channel, which the loop below drains
		go func() {
			for i := g; i < ds.Len(); i += 8 {
				p, err := r.Read(dataset.SampleID(i))
				if err != nil {
					done <- err
					return
				}
				if err := dataset.VerifyPayload(p, seed, dataset.SampleID(i)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
