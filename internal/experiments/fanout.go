package experiments

import (
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/trainsim"
)

// runAll executes a set of independent simulation campaigns, fanning out
// over p.Pool (nil = serial). Every campaign carries its own seeded RNGs
// inside pipeline.Run, and results are slotted by config index, so the
// returned slice — and hence every rendered report — is identical for any
// pool width. Rendering stays with the caller, after all campaigns finish,
// which keeps report lines in figure order regardless of completion order.
func runAll(p Params, cfgs []pipeline.Config) ([]*pipeline.Result, error) {
	return par.Map(p.Pool, len(cfgs), func(i int) (*pipeline.Result, error) {
		cfg := cfgs[i]
		cfg.Pool = p.Pool
		return pipeline.Run(cfg)
	})
}

// runAllTrain is runAll for accuracy-tracking campaigns (trainsim.Run).
func runAllTrain(p Params, cfgs []pipeline.Config) ([]*trainsim.Campaign, error) {
	return par.Map(p.Pool, len(cfgs), func(i int) (*trainsim.Campaign, error) {
		cfg := cfgs[i]
		cfg.Pool = p.Pool
		return trainsim.Run(cfg)
	})
}
