// Package kvstore implements a sharded, TCP-based in-memory key-value
// store — the "alternatives to distributed caching like for example
// KV-stores" the paper names as a drop-in substitute for its peer-cache
// distribution manager (Section 2). The online runtime can mount a
// kvstore.Cluster as its shared cache layer instead of node-to-node
// fetches.
//
// The wire protocol is deliberately simple and self-contained:
//
//	request : op(1) keyLen(u32) key valLen(u32) val
//	response: status(1) valLen(u32) val
//
// with big-endian lengths, one request per round trip, and persistent
// connections. Servers bound their memory with an LRU over value bytes.
package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Protocol ops.
const (
	opGet byte = iota + 1
	opPut
	opDelete
	opStats
)

// Response statuses.
const (
	statusOK byte = iota + 1
	statusNotFound
	statusError
)

// maxKeyLen and maxValLen bound request sizes (defense against corrupt or
// hostile peers).
const (
	maxKeyLen = 1 << 10
	maxValLen = 64 << 20
)

// Server is one KV shard.
type Server struct {
	ln       net.Listener
	capacity int64

	mu    sync.Mutex
	items map[string]*entry
	head  *entry // most recently used
	tail  *entry // least recently used
	used  int64

	hits      uint64
	misses    uint64
	evictions uint64

	wg     sync.WaitGroup
	closed chan struct{}
}

type entry struct {
	key        string
	val        []byte
	prev, next *entry
}

// NewServer starts a shard listening on addr ("127.0.0.1:0" for an
// ephemeral port) with the given byte capacity.
func NewServer(addr string, capacity int64) (*Server, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("kvstore: capacity %d <= 0", capacity)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: listen: %w", err)
	}
	s := &Server{
		ln:       ln,
		capacity: capacity,
		items:    make(map[string]*entry),
		closed:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the shard's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for connection handlers to exit.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Stats is a shard's counter snapshot.
type Stats struct {
	Items     int
	UsedBytes int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats returns a snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Items:     len(s.items),
		UsedBytes: s.used,
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			// Transient accept failure: keep serving.
			continue
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		op, key, val, err := readRequest(r)
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		switch op {
		case opGet:
			if v, ok := s.get(key); ok {
				writeResponse(w, statusOK, v)
			} else {
				writeResponse(w, statusNotFound, nil)
			}
		case opPut:
			s.put(key, val)
			writeResponse(w, statusOK, nil)
		case opDelete:
			s.delete(key)
			writeResponse(w, statusOK, nil)
		case opStats:
			st := s.Stats()
			buf := make([]byte, 8*5)
			binary.BigEndian.PutUint64(buf[0:], uint64(st.Items))
			binary.BigEndian.PutUint64(buf[8:], uint64(st.UsedBytes))
			binary.BigEndian.PutUint64(buf[16:], st.Hits)
			binary.BigEndian.PutUint64(buf[24:], st.Misses)
			binary.BigEndian.PutUint64(buf[32:], st.Evictions)
			writeResponse(w, statusOK, buf)
		default:
			writeResponse(w, statusError, nil)
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// get looks a key up and promotes it.
func (s *Server) get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.moveToFront(e)
	return e.val, true
}

// put inserts or replaces a value, evicting LRU entries to fit.
func (s *Server) put(key string, val []byte) {
	size := int64(len(val))
	if size > s.capacity {
		return // silently refuse values larger than the shard
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[key]; ok {
		s.used += size - int64(len(e.val))
		e.val = val
		s.moveToFront(e)
	} else {
		e := &entry{key: key, val: val}
		s.items[key] = e
		s.pushFront(e)
		s.used += size
	}
	for s.used > s.capacity && s.tail != nil {
		s.evict(s.tail)
	}
}

func (s *Server) delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[key]; ok {
		s.remove(e)
		delete(s.items, key)
		s.used -= int64(len(e.val))
	}
}

func (s *Server) evict(e *entry) {
	s.remove(e)
	delete(s.items, e.key)
	s.used -= int64(len(e.val))
	s.evictions++
}

// Intrusive doubly-linked LRU list.
func (s *Server) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Server) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Server) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.remove(e)
	s.pushFront(e)
}

// readRequest parses one request frame.
func readRequest(r *bufio.Reader) (op byte, key string, val []byte, err error) {
	op, err = r.ReadByte()
	if err != nil {
		return 0, "", nil, err
	}
	keyLen, err := readLen(r, maxKeyLen)
	if err != nil {
		return 0, "", nil, err
	}
	keyBuf := make([]byte, keyLen)
	if _, err := io.ReadFull(r, keyBuf); err != nil {
		return 0, "", nil, err
	}
	valLen, err := readLen(r, maxValLen)
	if err != nil {
		return 0, "", nil, err
	}
	val = make([]byte, valLen)
	if _, err := io.ReadFull(r, val); err != nil {
		return 0, "", nil, err
	}
	return op, string(keyBuf), val, nil
}

func readLen(r io.Reader, max uint32) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(buf[:])
	if n > max {
		return 0, errors.New("kvstore: frame too large")
	}
	return n, nil
}

func writeResponse(w *bufio.Writer, status byte, val []byte) {
	// bufio.Writer errors are sticky; the caller's Flush surfaces the
	// first one and drops the connection.
	_ = w.WriteByte(status)
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(len(val)))
	_, _ = w.Write(buf[:])
	_, _ = w.Write(val)
}
