package kvstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// TestBenchKVJSON is the benchmark-recording harness behind
// `make bench-kv`.
//
// Default (no env) it is a CI-safe smoke test: it drives a few hundred
// ops through both protocols against a live server and fails on any
// protocol error — enough to catch a broken frame encoder without
// burning benchmark time in `go test ./...`.
//
// With LOBSTER_BENCH_KV=tiny it runs the sustained-overload and hedged
// MultiGet benches at verify.sh scale, writes their JSON to a temp
// file, and schema-checks both that file and the committed
// BENCH_kv.json for the goodput/shed/p999 fields.
//
// With LOBSTER_BENCH_KV=1 it runs the kvstore micro-benchmarks via
// testing.Benchmark plus the full-size overload/hedge phases and
// writes the results (ops/sec, B/op, allocs/op, p99, goodput, shed
// rates, tail quantiles) to BENCH_kv.json at the repository root,
// including the v1-vs-v2 headline comparison at 16 concurrent clients.
func TestBenchKVJSON(t *testing.T) {
	switch os.Getenv("LOBSTER_BENCH_KV") {
	case "":
		benchSmoke(t)
	case "tiny":
		benchTiny(t)
	default:
		benchFull(t)
	}
}

func benchSmoke(t *testing.T) {
	s, err := newBenchServer()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	window := make([]string, 16)
	for i := range window {
		window[i] = benchKey(i)
	}
	for _, proto := range []string{"v1", "v2"} {
		var c benchClient
		switch proto {
		case "v1":
			cl, err := NewClient(s.Addr(), 2)
			if err != nil {
				t.Fatal(err)
			}
			c = cl
		default:
			cl, err := NewClientV2(s.Addr(), 1)
			if err != nil {
				t.Fatal(err)
			}
			c = cl
		}
		for i := 0; i < 100; i++ {
			v, found, err := c.Get(benchKey(i % benchKeys))
			if err != nil || !found || len(v) != benchValBytes {
				c.Close()
				t.Fatalf("%s smoke Get: len=%d found=%v err=%v", proto, len(v), found, err)
			}
		}
		vals, err := c.MultiGet(window)
		if err != nil {
			c.Close()
			t.Fatalf("%s smoke MultiGet: %v", proto, err)
		}
		for i, v := range vals {
			if len(v) != benchValBytes {
				c.Close()
				t.Fatalf("%s smoke MultiGet[%d]: len=%d", proto, i, len(v))
			}
		}
		if err := c.Put("smoke", []byte("x")); err != nil {
			c.Close()
			t.Fatalf("%s smoke Put: %v", proto, err)
		}
		c.Close()
	}
}

// benchTiny runs the overload and hedge benches at smoke scale, writes
// their JSON to a temp file, and schema-checks it alongside the
// committed BENCH_kv.json. This is the verify.sh gate for the
// tail-latency sections: it proves the bench runs end to end and that
// the recorded schema carries the goodput/shed/p999 fields.
func benchTiny(t *testing.T) {
	overload, env := runOverloadBench(t, overloadTiny)
	hedged := runHedgeBench(t, overloadTiny)
	out := struct {
		Generated string         `json:"generated"`
		GoVersion string         `json:"go_version"`
		Overload  overloadReport `json:"sustained_overload"`
		Hedged    hedgeReport    `json:"hedged_multiget"`
		Env       benchEnv       `json:"env"`
	}{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Overload:  overload,
		Hedged:    hedged,
		Env:       env,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_kv_tiny.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	schemaCheckBenchKV(t, path)
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	schemaCheckBenchKV(t, filepath.Join(root, "BENCH_kv.json"))
}

// schemaCheckBenchKV asserts the tail-latency fields this PR adds are
// present and sane in a BENCH_kv.json-shaped file.
func schemaCheckBenchKV(t *testing.T, path string) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("schema check: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("schema check %s: %v", path, err)
	}
	num := func(keypath ...string) float64 {
		var cur any = doc
		for _, k := range keypath {
			m, ok := cur.(map[string]any)
			if !ok {
				t.Fatalf("schema check %s: %v is not an object at %q", path, keypath, k)
			}
			cur, ok = m[k]
			if !ok {
				t.Fatalf("schema check %s: missing field %v", path, keypath)
			}
			if k == "phases" {
				arr, ok := cur.([]any)
				if !ok || len(arr) == 0 {
					t.Fatalf("schema check %s: %v has no phases", path, keypath)
				}
				cur = arr[0]
			}
		}
		v, ok := cur.(float64)
		if !ok {
			t.Fatalf("schema check %s: %v is not a number", path, keypath)
		}
		return v
	}
	if v := num("sustained_overload", "saturation_ops_per_sec"); v <= 0 {
		t.Fatalf("schema check %s: saturation_ops_per_sec = %v, want > 0", path, v)
	}
	if v := num("sustained_overload", "goodput_ratio_at_10x"); v < 0.8 {
		t.Fatalf("schema check %s: goodput_ratio_at_10x = %v, want >= 0.8", path, v)
	}
	num("sustained_overload", "phases", "goodput_ops_per_sec")
	num("sustained_overload", "phases", "shed_rate_per_sec")
	num("sustained_overload", "phases", "shed_deadline")
	num("sustained_overload", "phases", "p99_ms")
	num("sustained_overload", "phases", "p999_ms")
	num("sustained_overload", "phases", "hist_p999_ms")
	if v := num("hedged_multiget", "p99_improvement"); v < 2 {
		t.Fatalf("schema check %s: hedged p99_improvement = %v, want >= 2", path, v)
	}
	num("hedged_multiget", "unhedged_p99_ms")
	num("hedged_multiget", "hedged_p99_ms")
	num("hedged_multiget", "hedge_fired")
	if v := num("env", "gomaxprocs"); v < 1 {
		t.Fatalf("schema check %s: gomaxprocs = %v", path, v)
	}
	num("env", "goroutines_overload")
	num("env", "histogram_samples")
}

// benchEntry is one benchmark row in BENCH_kv.json.
type benchEntry struct {
	Name        string  `json:"name"`
	Proto       string  `json:"proto"`
	Clients     int     `json:"clients"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
}

func toEntry(name, proto string, clients int, r testing.BenchmarkResult) benchEntry {
	ns := float64(r.NsPerOp())
	e := benchEntry{
		Name:        name,
		Proto:       proto,
		Clients:     clients,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if ns > 0 {
		e.OpsPerSec = 1e9 / ns
	}
	if p99, ok := r.Extra["p99-ns"]; ok {
		e.P99Ns = p99
	}
	return e
}

func benchFull(t *testing.T) {
	s, err := newBenchServer()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var entries []benchEntry
	get := func(proto string, clients int) benchEntry {
		r := testing.Benchmark(func(b *testing.B) {
			c := benchDial(b, s, proto)
			defer c.Close()
			runClients(b, clients, func(g, i int) error {
				_, found, err := c.Get(benchKey((g*7919 + i) % benchKeys))
				if err == nil && !found {
					err = fmt.Errorf("bench key missing")
				}
				return err
			})
		})
		e := toEntry("get", proto, clients, r)
		t.Logf("get/%s/clients=%d: %.0f ops/sec, %d B/op, %d allocs/op, p99 %.0fns",
			proto, clients, e.OpsPerSec, e.BytesPerOp, e.AllocsPerOp, e.P99Ns)
		return e
	}
	for _, proto := range []string{"v1", "v2"} {
		for _, clients := range []int{1, 4, 16, 64} {
			entries = append(entries, get(proto, clients))
		}
	}

	window := make([]string, 32)
	for k := range window {
		window[k] = benchKey(k * 31 % benchKeys)
	}
	for _, clients := range []int{1, 16} {
		clients := clients
		r := testing.Benchmark(func(b *testing.B) {
			c := benchDial(b, s, "v1")
			defer c.Close()
			runClients(b, clients, func(g, i int) error {
				for _, key := range window {
					if _, _, err := c.Get(key); err != nil {
						return err
					}
				}
				return nil
			})
		})
		entries = append(entries, toEntry("multiget-window32", "v1-loop", clients, r))
		r = testing.Benchmark(func(b *testing.B) {
			c := benchDial(b, s, "v2")
			defer c.Close()
			runClients(b, clients, func(g, i int) error {
				_, err := c.MultiGet(window)
				return err
			})
		})
		entries = append(entries, toEntry("multiget-window32", "v2-batch", clients, r))
	}

	val := make([]byte, benchValBytes)
	for _, proto := range []string{"v1", "v2"} {
		proto := proto
		r := testing.Benchmark(func(b *testing.B) {
			c := benchDial(b, s, proto)
			defer c.Close()
			runClients(b, 16, func(g, i int) error {
				return c.Put(benchKey((g*7919+i)%benchKeys), val)
			})
		})
		entries = append(entries, toEntry("put", proto, 16, r))
	}

	var v1at16, v2at16 *benchEntry
	for i := range entries {
		e := &entries[i]
		if e.Name == "get" && e.Clients == 16 {
			switch e.Proto {
			case "v1":
				v1at16 = e
			case "v2":
				v2at16 = e
			}
		}
	}
	if v1at16 == nil || v2at16 == nil {
		t.Fatal("missing 16-client entries")
	}
	speedup := v2at16.OpsPerSec / v1at16.OpsPerSec
	t.Logf("headline: v2 %.0f ops/sec vs v1 %.0f ops/sec at 16 clients = %.2fx",
		v2at16.OpsPerSec, v1at16.OpsPerSec, speedup)

	overload, env := runOverloadBench(t, overloadFull)
	hedged := runHedgeBench(t, overloadFull)

	out := struct {
		Generated string `json:"generated"`
		GoVersion string `json:"go_version"`
		NumCPU    int    `json:"num_cpu"`
		Note      string `json:"note"`
		// SeedBaseline is the pre-rework data path (single-op blocking
		// round trips, unstriped mutex LRU, no pooling) measured at
		// commit dd14fa7 with the same 16-client Get workload on the
		// same machine as the rest of this file.
		SeedBaseline benchEntry   `json:"seed_baseline"`
		Headline     struct {
			V1OpsPerSec float64 `json:"v1_ops_per_sec"`
			V2OpsPerSec float64 `json:"v2_ops_per_sec"`
			Speedup     float64 `json:"speedup_v2_over_v1"`
		} `json:"headline_get_16_clients"`
		Results []benchEntry `json:"results"`
		// Overload and Hedged are the tail-latency sections (DESIGN.md
		// §11): sustained-overload goodput vs saturation and the hedged
		// MultiGet comparison against one artificially slow shard.
		Overload overloadReport `json:"sustained_overload"`
		Hedged   hedgeReport    `json:"hedged_multiget"`
		Env      benchEnv       `json:"env"`
	}{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Note: "get/put: 4KiB values, 1024 keys; v1 uses a 4-conn pool, " +
			"v2 one pipelined conn; multiget fetches a 32-key window",
		SeedBaseline: benchEntry{
			Name: "get-seed-dd14fa7", Proto: "v1-seed", Clients: 16,
			NsPerOp: 12008, OpsPerSec: 83278, BytesPerOp: 4162, AllocsPerOp: 9,
		},
		Results:  entries,
		Overload: overload,
		Hedged:   hedged,
		Env:      env,
	}
	out.Headline.V1OpsPerSec = v1at16.OpsPerSec
	out.Headline.V2OpsPerSec = v2at16.OpsPerSec
	out.Headline.Speedup = speedup

	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "BENCH_kv.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
	if speedup < 2 {
		t.Logf("WARNING: v2 speedup %.2fx below the 2x target; box may be loaded", speedup)
	}
}

// repoRoot walks up from the working directory to the module root.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}
