// Package stats provides the small numerical substrate shared by the
// Lobster reproduction: deterministic random number generation, streaming
// summaries, histograms, and (piecewise) linear regression.
//
// Everything here is stdlib-only and allocation-conscious: these helpers sit
// on the hot path of the virtual-time pipeline simulation, which replays
// tens of millions of sample accesses per experiment.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on
// splitmix64. It is the generator used everywhere a reproducible stream is
// required: dataset synthesis, epoch shuffles, and noise injection.
//
// Determinism matters beyond test stability: the paper's central trick is
// that the sample access order is fully determined by the seed ("the I/O
// access pattern ... can be made fully deterministic"), which is what makes
// clairvoyant prefetching and reuse-distance eviction possible. RNG is the
// reproduction of that property.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators built from the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// DeriveSeed combines a base seed with a stream identifier (for example a
// node ID or an epoch number) into an independent seed. It is how the
// paper's "seed of each node ... a function of a fixed seed and the node id"
// rule is implemented.
func DeriveSeed(base uint64, stream uint64) uint64 {
	// One splitmix64 step over the XOR of the inputs decorrelates streams.
	z := base ^ (stream * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar Box-Muller method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns a log-normally distributed value with the given
// parameters of the underlying normal distribution. Sample sizes in both
// ImageNet variants are well described by a log-normal body, which is why
// the synthetic datasets use it.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Shuffle performs a Fisher-Yates shuffle of n elements via swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
