package plan

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode throws arbitrary JSON-ish input at the plan decoder: it must
// never panic, and anything it accepts must satisfy Validate (Decode
// validates internally, so acceptance implies well-formedness).
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := samplePlan(4).Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("{}")
	f.Add(`{"version":1,"nodes":-1}`)
	f.Add(`[1,2,3]`)
	f.Add(strings.Repeat("[", 100))
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Decode(strings.NewReader(s))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid plan: %v", err)
		}
		// ThreadsAt must be total for any h on an accepted plan.
		for _, h := range []int{0, 1, 7, 100000} {
			th := p.ThreadsAt(h)
			if len(th) != p.Nodes {
				t.Fatalf("ThreadsAt(%d) returned %d nodes", h, len(th))
			}
		}
	})
}
