package preproc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// Job is one preprocessing work item: a raw payload to decode and augment.
type Job struct {
	ID      dataset.SampleID
	Payload []byte
	Seed    uint64
	// Done receives the result exactly once.
	Done chan<- Result
}

// Result is the outcome of a Job.
type Result struct {
	Tensor *Tensor
	Err    error
}

// Pool is a resizable preprocessing worker pool. Lobster's thread manager
// grows and shrinks it at runtime ("take away one thread from the
// preprocessing stage and make it available for data loading",
// Section 4.1); Resize is safe to call concurrently with Submit.
type Pool struct {
	jobs chan Job

	mu      sync.Mutex
	target  int           // desired worker count
	workers int           // current worker count
	stops   chan struct{} // one token per worker asked to exit
	closed  bool

	processed atomic.Uint64
	wg        sync.WaitGroup

	// ins is the optional live instrumentation (SetInstruments); an
	// atomic pointer so attaching mid-run cannot race the workers. The
	// nil fast path costs one pointer load per job.
	ins atomic.Pointer[Instruments]
	// tidFree recycles trace thread IDs across worker generations so a
	// thread-controller resizing every iteration does not mint
	// unbounded trace tracks.
	tidMu   sync.Mutex
	tidFree []int64
	tidSeq  int
}

// Instruments is the pool's optional observability hookup. JobSeconds
// gets one observation per preprocessing job; Trace (with TraceLabel as
// the track-name prefix) gets one "preproc" span per job on a
// per-worker track. Attach with SetInstruments before or during a run.
type Instruments struct {
	JobSeconds *obs.Histogram
	Trace      *obs.TraceRing
	TraceLabel string
}

// active reports whether recording would do anything right now — the
// pre-check that keeps the disabled path free of clock reads.
func (ins *Instruments) active() bool {
	return ins != nil && (ins.Trace != nil || ins.JobSeconds.On())
}

// SetInstruments attaches (or replaces, or with nil detaches) the
// pool's instrumentation. Safe to call concurrently with Submit.
func (p *Pool) SetInstruments(ins *Instruments) { p.ins.Store(ins) }

// takeTID leases a trace track for one worker, reusing returned IDs
// before minting new ones.
func (p *Pool) takeTID(ins *Instruments) int64 {
	p.tidMu.Lock()
	if n := len(p.tidFree); n > 0 {
		tid := p.tidFree[n-1]
		p.tidFree = p.tidFree[:n-1]
		p.tidMu.Unlock()
		return tid
	}
	p.tidSeq++
	seq := p.tidSeq
	p.tidMu.Unlock()
	return ins.Trace.NewThread(fmt.Sprintf("%s/worker%d", ins.TraceLabel, seq))
}

func (p *Pool) putTID(tid int64) {
	if tid == 0 {
		return
	}
	p.tidMu.Lock()
	p.tidFree = append(p.tidFree, tid)
	p.tidMu.Unlock()
}

// QueueLen returns the number of jobs waiting in the queue (for
// scrape-time gauge callbacks).
func (p *Pool) QueueLen() int { return len(p.jobs) }

// NewPool starts a pool with the given number of workers.
func NewPool(workers, queueDepth int) (*Pool, error) {
	if workers < 1 {
		return nil, fmt.Errorf("preproc: workers %d < 1", workers)
	}
	if queueDepth < 1 {
		return nil, fmt.Errorf("preproc: queueDepth %d < 1", queueDepth)
	}
	p := &Pool{
		jobs:  make(chan Job, queueDepth),
		stops: make(chan struct{}, 1024),
	}
	p.mu.Lock()
	p.target = workers
	for i := 0; i < workers; i++ {
		p.spawn()
	}
	p.mu.Unlock()
	return p, nil
}

func (p *Pool) spawn() {
	p.workers++
	p.wg.Add(1)
	go p.worker()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	var tid int64
	defer func() { p.putTID(tid) }()
	for {
		select {
		case <-p.stops:
			return
		case job, ok := <-p.jobs:
			if !ok {
				return
			}
			ins := p.ins.Load()
			if tid == 0 && ins != nil && ins.Trace != nil {
				tid = p.takeTID(ins)
			}
			p.run(job, ins, tid)
		}
	}
}

func (p *Pool) run(job Job, ins *Instruments, tid int64) {
	var start time.Time
	rec := ins.active()
	if rec {
		start = time.Now()
	}
	t, err := Decode(job.Payload, job.ID)
	if err == nil {
		Augment(t, job.Seed)
	}
	p.processed.Add(1)
	if rec {
		d := time.Since(start)
		ins.JobSeconds.Observe(d.Seconds())
		if ins.Trace != nil && tid != 0 {
			ins.Trace.Span("preproc", "cpu", tid, start, d)
		}
	}
	job.Done <- Result{Tensor: t, Err: err}
}

// Submit enqueues a job, blocking if the queue is full. Submitting to a
// closed pool panics (it is a caller sequencing bug).
func (p *Pool) Submit(job Job) {
	p.jobs <- job
}

// Resize sets the desired worker count. Shrinking takes effect as workers
// finish their current job.
func (p *Pool) Resize(n int) error {
	if n < 1 {
		return fmt.Errorf("preproc: Resize to %d < 1", n)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("preproc: Resize after Close")
	}
	for p.target < n {
		p.target++
		p.spawn()
	}
	shrink := 0
	for p.target > n {
		p.target--
		p.workers--
		shrink++
	}
	p.mu.Unlock()
	// Deliver stop tokens after releasing the lock: a full stops channel
	// must stall only this caller, not everyone contending for p.mu.
	for ; shrink > 0; shrink-- {
		p.stops <- struct{}{}
	}
	return nil
}

// Workers returns the current desired worker count.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// Processed returns the number of jobs completed.
func (p *Pool) Processed() uint64 { return p.processed.Load() }

// Close drains the pool: no further Submits are allowed; it blocks until
// all workers exit.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
