package doctor

import (
	"bytes"
	"testing"

	"repro/internal/kvstore"
	"repro/internal/obs"
)

// TestCrossNodeTraceMerge drives the full cross-node correlation path:
// two kvstore shards on separate "nodes" (rings that happen to share a
// pid, as two hosts' processes legitimately can), clients on different
// ranks issuing 0xA4-framed gets, each shard's /trace.json dump merged
// by the doctor. The originating rank/iter must survive the wire
// round-trip into the server-side spans, and the merge must keep the
// two nodes' tracks collision-free.
func TestCrossNodeTraceMerge(t *testing.T) {
	type node struct {
		name string
		ring *obs.TraceRing
		srv  *kvstore.Server
	}
	var nodes []*node
	for _, name := range []string{"node0", "node1"} {
		ring := obs.NewTraceRing(1 << 10)
		ring.SetProcess(4242, name) // same pid on both hosts
		srv, err := kvstore.NewServerOptions("127.0.0.1:0", kvstore.ServerOptions{
			Capacity: 1 << 20,
			Trace:    ring,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		nodes = append(nodes, &node{name: name, ring: ring, srv: srv})
	}

	type req struct {
		node        int
		rank, epoch int
		iter        int64
	}
	reqs := []req{
		{node: 0, rank: 3, epoch: 1, iter: 7},
		{node: 1, rank: 5, epoch: 2, iter: 9},
	}
	for _, q := range reqs {
		cl, err := kvstore.NewClientV2(nodes[q.node].srv.Addr(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Put("sample", []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := cl.GetTraced("sample", obs.NewTraceCtx(q.rank, q.epoch, q.iter)); err != nil || !ok {
			t.Fatalf("GetTraced: ok=%v err=%v", ok, err)
		}
		cl.Close()
	}

	// Close both shards first: Close waits out the handler goroutines,
	// so every server-side span has landed in its ring.
	var traces []*Trace
	for _, n := range nodes {
		if err := n.srv.Close(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := n.ring.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		tr, err := ParseTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}

	merged := Merge(traces...)
	if len(merged.Processes) != 2 {
		t.Fatalf("merged %d processes, want 2: %v", len(merged.Processes), merged.Processes)
	}
	pids := map[string]int{}
	for pid, name := range merged.Processes {
		pids[name] = pid
	}
	if pids["node0"] == pids["node1"] {
		t.Errorf("colliding pids not remapped: both nodes at %d", pids["node0"])
	}

	// Each node's kv.get span must carry its requester's rank/iter.
	found := map[string]bool{}
	for _, e := range merged.Events {
		if e.Ph != "X" || e.Name != "kv.get" {
			continue
		}
		for i, q := range reqs {
			if e.Pid == pids[nodes[q.node].name] &&
				e.Args["rank"] == float64(q.rank) && e.Args["iter"] == float64(q.iter) {
				found[nodes[i].name] = true
			}
		}
	}
	for _, n := range nodes {
		if !found[n.name] {
			t.Errorf("%s: no kv.get span carrying its requester's rank/iter", n.name)
		}
	}
}
