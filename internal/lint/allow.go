package lint

import (
	"go/token"
	"strings"
)

// allowDirective is the escape hatch:
//
//	//lint:allow <check-id> <justification>
//
// It suppresses findings of <check-id> on the directive's own line and
// on the line directly below (so it works both as an end-of-line comment
// and as a comment above the offending statement). The justification is
// mandatory: an exception whose reason nobody wrote down is a bug
// waiting to be re-discovered. A directive that suppresses nothing is
// itself a finding — stale allows are how disabled checks quietly come
// back to life.
const allowPrefix = "//lint:allow"

// allowDirective is one parsed, well-formed directive. `used` is set
// when the directive actually suppresses a finding, so the run can
// report stale directives afterwards.
type allowDirective struct {
	check string
	pos   token.Position // of the comment itself
	test  bool           // lives in a _test.go file
	used  bool
}

// allowSet indexes the directives of one analysis run:
// filename -> line -> directives covering that line.
type allowSet struct {
	byLine map[string]map[int][]*allowDirective
	all    []*allowDirective
}

func newAllowSet() *allowSet {
	return &allowSet{byLine: map[string]map[int][]*allowDirective{}}
}

// permits reports whether a directive covers the finding, marking the
// first matching directive as used.
func (s *allowSet) permits(f Finding) bool {
	for _, d := range s.byLine[f.Pos.Filename][f.Pos.Line] {
		if d.check == f.Check {
			d.used = true
			return true
		}
	}
	return false
}

// collect scans every comment of the package — test files included,
// since the goroutine/mutex checks run there too — for allow
// directives, recording findings for malformed ones (missing check ID
// or justification).
func (s *allowSet) collect(p *Package) []Finding {
	var bad []Finding
	for _, file := range p.allFiles() {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, isAllow := strings.CutPrefix(c.Text, allowPrefix)
				if !isAllow || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				rest = strings.TrimSpace(rest)
				id, why, _ := strings.Cut(rest, " ")
				if id == "" {
					bad = append(bad, p.finding(idDirective, c, "lint:allow directive names no check ID"))
					continue
				}
				if strings.TrimSpace(why) == "" {
					bad = append(bad, p.finding(idDirective,
						c, "lint:allow %s has no justification; write why the exception is safe", id))
					continue
				}
				pos := p.position(c)
				d := &allowDirective{
					check: id,
					pos:   pos,
					test:  strings.HasSuffix(pos.Filename, "_test.go"),
				}
				s.all = append(s.all, d)
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*allowDirective{}
					s.byLine[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					lines[line] = append(lines[line], d)
				}
			}
		}
	}
	return bad
}

// staleFindings reports directives that cannot or did not suppress
// anything: unknown check IDs (against the full registry, so a typo is
// caught even when running a subset), and directives whose check ran
// over their file yet suppressed no finding. Directives for checks that
// were not part of this run are left alone — a fixture test running one
// analyzer must not declare every other directive stale.
func (s *allowSet) staleFindings(ran []*Analyzer) []Finding {
	known := map[string]bool{idDirective: true}
	for _, a := range Analyzers() {
		known[a.ID] = true
	}
	ranProd := map[string]bool{}
	ranTest := map[string]bool{}
	for _, a := range ran {
		ranProd[a.ID] = true
		if a.Tests {
			ranTest[a.ID] = true
		}
	}
	var out []Finding
	for _, d := range s.all {
		switch {
		case !known[d.check]:
			out = append(out, Finding{Check: idDirective, Pos: d.pos,
				Message: "lint:allow names unknown check " + d.check + "; fix the ID or remove the directive"})
		case d.used:
		case d.test && !ranTest[d.check]:
			// The check does not run on test files; the directive can
			// never fire there.
			if ranProd[d.check] {
				out = append(out, Finding{Check: idDirective, Pos: d.pos,
					Message: "lint:allow " + d.check + " in a test file, but that check does not run on test files; remove the stale directive"})
			}
		case ranProd[d.check]:
			out = append(out, Finding{Check: idDirective, Pos: d.pos,
				Message: "lint:allow " + d.check + " suppresses nothing; the exception is stale, remove the directive"})
		}
	}
	return out
}
