package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrClientClosed is returned for ops issued after Close.
var ErrClientClosed = errors.New("kvstore: client closed")

// writeQueueDepth bounds each connection's in-flight request queue.
const writeQueueDepth = 512

// ClientV2 speaks the pipelined v2 protocol to one shard: every request
// carries an ID, a per-connection writer goroutine coalesces frames
// into large writes, and a reader goroutine dispatches responses to
// their waiters — so one connection sustains many concurrent ops
// instead of one per round trip. Safe for concurrent use.
type ClientV2 struct {
	addr  string
	mu    sync.Mutex
	conns []*pipeConn
	rr    atomic.Uint32
	shut  bool

	// ins is the optional observability hookup (SetInstruments); an
	// atomic pointer so it can be attached while ops are in flight. The
	// un-instrumented fast path costs one pointer load per op.
	ins atomic.Pointer[ClientInstruments]
}

// SetInstruments attaches (or with nil detaches) per-op latency and
// counter instruments. Safe to call concurrently with ops.
func (cl *ClientV2) SetInstruments(ins *ClientInstruments) { cl.ins.Store(ins) }

// opStart begins timing one op: bumps the in-flight gauge and returns
// the histogram plus start time. A nil return (no instruments, or
// metrics disabled) means opDone must be skipped.
func (cl *ClientV2) opStart(op byte) (*obs.Histogram, *obs.Gauge, time.Time) {
	ins := cl.ins.Load()
	if ins == nil {
		return nil, nil, time.Time{}
	}
	h := ins.opSeconds(op)
	if !h.On() {
		return nil, nil, time.Time{}
	}
	ins.InFlight.Add(1)
	return h, ins.InFlight, time.Now()
}

// opDone finishes timing started by opStart.
func opDone(h *obs.Histogram, g *obs.Gauge, start time.Time) {
	g.Add(-1)
	h.Observe(time.Since(start).Seconds())
}

// NewClientV2 connects to a shard with the given number of multiplexed
// connections (a handful is plenty; each carries hundreds of in-flight
// ops).
func NewClientV2(addr string, conns int) (*ClientV2, error) {
	if conns < 1 {
		conns = 1
	}
	cl := &ClientV2{addr: addr}
	for i := 0; i < conns; i++ {
		p, err := dialPipe(addr)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.conns = append(cl.conns, p)
	}
	return cl, nil
}

// conn picks a connection round-robin, transparently replacing dead
// ones.
func (cl *ClientV2) conn() (*pipeConn, error) {
	cl.mu.Lock()
	if cl.shut {
		cl.mu.Unlock()
		return nil, ErrClientClosed
	}
	// Unsigned modulo before the int conversion: on 32-bit platforms a
	// wrapped counter would otherwise go negative and panic the index.
	i := int(cl.rr.Add(1) % uint32(len(cl.conns)))
	p := cl.conns[i]
	cl.mu.Unlock()
	if !p.dead.Load() {
		return p, nil
	}
	return cl.replace(i, p)
}

// replace redials slot i if it still holds the dead connection old.
func (cl *ClientV2) replace(i int, old *pipeConn) (*pipeConn, error) {
	fresh, err := dialPipe(cl.addr)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	if cl.shut {
		cl.mu.Unlock()
		fresh.shutdown(ErrClientClosed)
		return nil, ErrClientClosed
	}
	cur := cl.conns[i]
	if cur != old && !cur.dead.Load() {
		// Someone else already replaced the slot; use theirs.
		cl.mu.Unlock()
		fresh.shutdown(ErrClientClosed)
		return cur, nil
	}
	cl.conns[i] = fresh
	cl.mu.Unlock()
	if ins := cl.ins.Load(); ins != nil {
		ins.Redials.Inc()
	}
	old.shutdown(errors.New("kvstore: connection replaced"))
	return fresh, nil
}

// Close tears down every connection; in-flight ops fail with
// ErrClientClosed.
func (cl *ClientV2) Close() {
	cl.mu.Lock()
	cl.shut = true
	conns := cl.conns
	cl.mu.Unlock()
	for _, p := range conns {
		p.shutdown(ErrClientClosed)
	}
}

// call is one in-flight request/response pair. Instances are pooled
// under a strict ownership rule: a call may be recycled (putCall) only
// after a successful round trip, because the response proves the writer
// goroutine finished serializing the request (see call.wrote). A call
// whose round trip errored may still be queued for — or held by — the
// writer, so error paths drop it for the GC instead of recycling it.
type call struct {
	op  byte
	id  uint32
	key string
	val []byte
	// Batch request fields (opMultiGet/opMultiPut).
	keys []string
	vals [][]byte
	// Response fields.
	status   byte
	out      []byte
	statuses []byte   // per-key statuses (opMultiPut)
	outs     [][]byte // per-key values (opMultiGet), nil = not found
	err      error
	done     chan *call
	// wrote is released by the writer goroutine once the request frame
	// is fully serialized and acquired by the reader before it completes
	// the call, ordering the writer's reads of the request fields before
	// any reuse of the call (or the caller's key/value buffers).
	wrote atomic.Bool
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan *call, 1)} }}

func getCall(op byte) *call {
	c := callPool.Get().(*call)
	c.op = op
	return c
}

func putCall(c *call) {
	select {
	case <-c.done: // drain a stray completion, never carry it to reuse
	default:
	}
	// Field-by-field: a struct assignment would copy the atomic.
	c.op, c.id, c.key, c.val = 0, 0, "", nil
	c.keys, c.vals = nil, nil
	c.status, c.out, c.statuses, c.outs = 0, nil, nil, nil
	c.err = nil
	c.wrote.Store(false)
	callPool.Put(c)
}

// pipeConn is one multiplexed connection: a writer goroutine drains wq
// and coalesces frames, a reader goroutine dispatches responses to the
// pending map by request ID.
type pipeConn struct {
	c    net.Conn
	wq   chan *call
	stop chan struct{}

	stopOnce sync.Once
	dead     atomic.Bool

	mu      sync.Mutex
	err     error
	nextID  uint32
	pending map[uint32]*call
	// held is the call the writer goroutine is serializing right now.
	// While a call is held, only the writer may complete it (fail and
	// the reader leave it alone), so nothing can wake its caller — and
	// free it to reuse its key/value buffers — mid-serialization.
	held *call

	wg sync.WaitGroup
}

func dialPipe(addr string) (*pipeConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial %s: %w", addr, err)
	}
	p := &pipeConn{
		c:       c,
		wq:      make(chan *call, writeQueueDepth),
		stop:    make(chan struct{}),
		pending: make(map[uint32]*call),
	}
	p.wg.Add(2)
	go p.writeLoop()
	go p.readLoop()
	return p, nil
}

// shutdown fails the connection (idempotent) and waits for its
// goroutines.
func (p *pipeConn) shutdown(err error) {
	p.fail(err)
	p.wg.Wait()
}

// fail marks the connection dead, closes the socket (unblocking both
// loops) and completes every pending call with err — except the call
// the writer is serializing, which the writer itself completes.
func (p *pipeConn) fail(err error) {
	p.stopOnce.Do(func() {
		p.dead.Store(true)
		p.mu.Lock()
		p.err = err
		p.mu.Unlock()
		close(p.stop)
		_ = p.c.Close() // unblocks the reader; its error is the close itself
	})
	// Whoever gets here drains whatever is pending at this moment —
	// except the call the writer currently holds, which the writer
	// completes itself after the frame is written (endWrite). Calls
	// registered later see p.err at registration and never enqueue;
	// calls queued but never written are completed here and skipped by
	// the writer (beginWrite).
	p.mu.Lock()
	var drained []*call
	for id, c := range p.pending {
		if c == p.held {
			continue
		}
		delete(p.pending, id)
		drained = append(drained, c)
	}
	failErr := p.err
	p.mu.Unlock()
	for _, c := range drained {
		c.err = failErr
		c.done <- c
	}
}

// register assigns a request ID and parks the call in the pending map.
func (p *pipeConn) register(c *call) error {
	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return err
	}
	c.id = p.nextID
	p.nextID++
	p.pending[c.id] = c
	p.mu.Unlock()
	return nil
}

// take removes a pending call; nil when already completed elsewhere.
func (p *pipeConn) take(id uint32) *call {
	p.mu.Lock()
	c := p.pending[id]
	delete(p.pending, id)
	p.mu.Unlock()
	return c
}

// failCall completes one call with err unless someone else already did.
func (p *pipeConn) failCall(c *call, err error) {
	if got := p.take(c.id); got != nil {
		got.err = err
		got.done <- got
	}
}

// failDesync handles a response that was matched to a pending call but
// contradicts it (wrong op, or a frame the writer never finished
// writing): it drops the connection and completes the taken call so its
// waiter cannot hang. The connection is failed *first* so the writer
// refuses to start serializing c after its waiter wakes; if the writer
// already holds c, it is handed back to pending and the writer
// completes it in endWrite once the frame is out.
func (p *pipeConn) failDesync(c *call, err error) {
	p.fail(err)
	p.mu.Lock()
	if p.held == c {
		p.pending[c.id] = c
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	c.err = err
	c.done <- c
}

// roundTrip runs one pipelined op to completion.
func (p *pipeConn) roundTrip(c *call) error {
	if err := p.register(c); err != nil {
		return err
	}
	select {
	case p.wq <- c:
	case <-p.stop:
		p.failCall(c, ErrClientClosed)
	}
	<-c.done
	return c.err
}

// writeLoop serializes queued requests onto the socket, flushing only
// when the queue momentarily drains — a burst of N ops from concurrent
// callers coalesces into one write syscall.
func (p *pipeConn) writeLoop() {
	defer p.wg.Done()
	w := bufio.NewWriterSize(p.c, connBufSize)
	for {
		select {
		case <-p.stop:
			p.drainQueue()
			return
		case c := <-p.wq:
			if !p.beginWrite(c) {
				continue
			}
			writeV2Request(w, c)
			p.endWrite(c)
			if len(p.wq) == 0 {
				// The enqueue that woke this loop typically readied us
				// before the caller's siblings got to run; yield once so
				// every runnable caller enqueues, then flush the whole
				// burst as one write.
				runtime.Gosched()
			}
			if len(p.wq) == 0 {
				if err := w.Flush(); err != nil {
					p.fail(err)
				}
			}
		}
	}
}

// beginWrite claims c for serialization, so that until endWrite
// releases the claim no one else completes it. On a failed connection
// it refuses the claim: c must not be serialized, and is completed here
// unless fail() already did (c gone from pending).
func (p *pipeConn) beginWrite(c *call) bool {
	p.mu.Lock()
	err := p.err
	ours := false
	if err != nil {
		if ours = p.pending[c.id] == c; ours {
			delete(p.pending, c.id)
		}
	} else {
		p.held = c
	}
	p.mu.Unlock()
	if err == nil {
		return true
	}
	if ours {
		c.err = err
		c.done <- c
	}
	return false
}

// endWrite publishes that c's frame is fully serialized (the release
// half of call.wrote — the reader acquires it before completing c) and
// drops the writer's claim. If the connection failed mid-write, fail()
// skipped c because it was held, so it is completed here.
func (p *pipeConn) endWrite(c *call) {
	// Capture the ID before publishing: once wrote is set a fast
	// response can complete c and recycle it under us.
	id := c.id
	c.wrote.Store(true)
	p.mu.Lock()
	p.held = nil
	var err error
	if p.err != nil && p.pending[id] == c {
		delete(p.pending, id)
		err = p.err
	}
	p.mu.Unlock()
	if err != nil {
		c.err = err
		c.done <- c
	}
}

// drainQueue fails whatever was queued but never written.
func (p *pipeConn) drainQueue() {
	for {
		select {
		case c := <-p.wq:
			p.failCall(c, p.connErr())
		default:
			return
		}
	}
}

func (p *pipeConn) connErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	return ErrClientClosed
}

// writeV2Request encodes one request frame (layout in store.go).
//
//lint:hotpath one frame encode per op; the write loop must not allocate between pooled calls
func writeV2Request(w *bufio.Writer, c *call) {
	// bufio errors are sticky; the writeLoop's Flush surfaces the first.
	_ = w.WriteByte(frameV2Magic)
	_ = w.WriteByte(c.op)
	writeU32(w, c.id)
	switch c.op {
	case opMultiGet:
		writeU32(w, uint32(len(c.keys)))
		for _, k := range c.keys {
			writeU32(w, uint32(len(k)))
			_, _ = w.WriteString(k)
		}
	case opMultiPut:
		writeU32(w, uint32(len(c.keys)))
		for i, k := range c.keys {
			writeU32(w, uint32(len(k)))
			_, _ = w.WriteString(k)
			writeU32(w, uint32(len(c.vals[i])))
			_, _ = w.Write(c.vals[i])
		}
	default:
		writeU32(w, uint32(len(c.key)))
		_, _ = w.WriteString(c.key)
		writeU32(w, uint32(len(c.val)))
		_, _ = w.Write(c.val)
	}
}

// readLoop parses response frames and hands each to its waiter.
func (p *pipeConn) readLoop() {
	defer p.wg.Done()
	r := bufio.NewReaderSize(p.c, connBufSize)
	for {
		op, err := r.ReadByte()
		if err != nil {
			p.fail(err)
			return
		}
		id, err := readU32(r)
		if err != nil {
			p.fail(err)
			return
		}
		status, err := r.ReadByte()
		if err != nil {
			p.fail(err)
			return
		}
		c := p.take(id)
		if c == nil {
			p.fail(fmt.Errorf("kvstore: response for unknown request %d (op %d)", id, op))
			return
		}
		// The acquire pairs with the writer's release in endWrite: after
		// it, the writer's reads of c's request fields happened before
		// this point, so completing c — and the caller then recycling it
		// — cannot race the serialization. A response whose frame the
		// writer never finished, or whose op does not match, is frame
		// desync from a corrupt peer.
		if !c.wrote.Load() || c.op != op {
			p.failDesync(c, fmt.Errorf("kvstore: mismatched response for request %d (op %d)", id, op))
			return
		}
		c.status = status
		if err := readV2Body(r, op, c); err != nil {
			c.err = err
			c.done <- c
			p.fail(err)
			return
		}
		c.done <- c
	}
}

// readV2Body parses a response frame's op-specific body into c. The
// only allocations are the response values themselves (they escape to
// the caller, so pooled scratch cannot hold them) and cold
// protocol-error formatting; the framing reads are allocation-free.
//
//lint:hotpath one frame decode per op; anything beyond the escaping response values is per-op garbage
func readV2Body(r *bufio.Reader, op byte, c *call) error {
	switch op {
	case opMultiGet:
		count, err := readLen(r, maxBatchLen)
		if err != nil {
			return err
		}
		if int(count) != len(c.keys) {
			//lint:allow hotpath cold protocol-error path; the connection is dropped right after
			return fmt.Errorf("kvstore: MultiGet response has %d entries, want %d", count, len(c.keys))
		}
		//lint:allow hotpath response values escape to the caller and cannot come from the pool
		c.outs = make([][]byte, count)
		for i := uint32(0); i < count; i++ {
			st, err := r.ReadByte()
			if err != nil {
				return err
			}
			n, err := readLen(r, maxValLen)
			if err != nil {
				return err
			}
			//lint:allow hotpath response values escape to the caller and cannot come from the pool
			v := make([]byte, n)
			if _, err := io.ReadFull(r, v); err != nil {
				return err
			}
			if st == statusOK {
				c.outs[i] = v
			}
		}
		return nil
	case opMultiPut:
		count, err := readLen(r, maxBatchLen)
		if err != nil {
			return err
		}
		if int(count) != len(c.keys) {
			//lint:allow hotpath cold protocol-error path; the connection is dropped right after
			return fmt.Errorf("kvstore: MultiPut response has %d entries, want %d", count, len(c.keys))
		}
		//lint:allow hotpath per-key status vector escapes to the caller and cannot come from the pool
		c.statuses = make([]byte, count)
		if _, err := io.ReadFull(r, c.statuses); err != nil {
			return err
		}
		return nil
	default:
		n, err := readLen(r, maxValLen)
		if err != nil {
			return err
		}
		//lint:allow hotpath response values escape to the caller and cannot come from the pool
		out := make([]byte, n)
		if _, err := io.ReadFull(r, out); err != nil {
			return err
		}
		c.out = out
		return nil
	}
}

// do runs one single-key op on some connection, timing it when
// instruments are attached (inline rather than deferred — this is the
// per-sample hot path and a defer closure would allocate).
func (cl *ClientV2) do(op byte, key string, val []byte) (byte, []byte, error) {
	h, g, start := cl.opStart(op)
	status, out, err := cl.doRaw(op, key, val)
	if h != nil {
		opDone(h, g, start)
	}
	return status, out, err
}

func (cl *ClientV2) doRaw(op byte, key string, val []byte) (byte, []byte, error) {
	p, err := cl.conn()
	if err != nil {
		return 0, nil, err
	}
	c := getCall(op)
	c.key, c.val = key, val
	if err := p.roundTrip(c); err != nil {
		// Failed calls may still be referenced by the writer goroutine;
		// drop them for the GC rather than recycling (see call).
		return 0, nil, err
	}
	status, out := c.status, c.out
	putCall(c)
	return status, out, nil
}

// Get fetches a value; found=false when the key is absent.
func (cl *ClientV2) Get(key string) ([]byte, bool, error) {
	status, out, err := cl.do(opGet, key, nil)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case statusOK:
		return out, true, nil
	case statusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("kvstore: server error on Get(%q)", key)
	}
}

// Put stores a value; ErrTooLarge when the shard can never admit it.
func (cl *ClientV2) Put(key string, val []byte) error {
	status, _, err := cl.do(opPut, key, val)
	if err != nil {
		return err
	}
	if status == statusTooLarge {
		if ins := cl.ins.Load(); ins != nil {
			ins.TooLarge.Inc()
		}
	}
	return putStatusErr(status, key)
}

// Delete removes a key (no-op when absent).
func (cl *ClientV2) Delete(key string) error {
	status, _, err := cl.do(opDelete, key, nil)
	if err != nil {
		return err
	}
	if status != statusOK {
		return fmt.Errorf("kvstore: server error on Delete(%q)", key)
	}
	return nil
}

// Stats fetches the shard's counters.
func (cl *ClientV2) Stats() (Stats, error) {
	status, out, err := cl.do(opStats, "", nil)
	if err != nil {
		return Stats{}, err
	}
	if status != statusOK || len(out) != statsWireLen {
		return Stats{}, fmt.Errorf("kvstore: bad stats response")
	}
	return decodeStats(out), nil
}

// MultiGet fetches a whole batch of keys in one round trip. vals[i] is
// nil when keys[i] is absent and non-nil (possibly empty) when present.
func (cl *ClientV2) MultiGet(keys []string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if len(keys) > maxBatchLen {
		return nil, fmt.Errorf("kvstore: MultiGet batch %d exceeds %d keys", len(keys), maxBatchLen)
	}
	h, g, start := cl.opStart(opMultiGet)
	outs, err := cl.multiGetRaw(keys)
	if h != nil {
		opDone(h, g, start)
	}
	return outs, err
}

func (cl *ClientV2) multiGetRaw(keys []string) ([][]byte, error) {
	p, err := cl.conn()
	if err != nil {
		return nil, err
	}
	c := getCall(opMultiGet)
	c.keys = keys
	if err := p.roundTrip(c); err != nil {
		// Drop, don't recycle: the writer may still hold the call.
		return nil, err
	}
	outs := c.outs
	status := c.status
	putCall(c)
	if status != statusOK {
		return nil, fmt.Errorf("kvstore: server error on MultiGet(%d keys)", len(keys))
	}
	return outs, nil
}

// MultiPut stores a whole batch of key/value pairs in one round trip.
// Storage is best-effort per key; the first per-key refusal (e.g.
// ErrTooLarge) is returned after the batch completes.
func (cl *ClientV2) MultiPut(keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("kvstore: MultiPut got %d keys, %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return nil
	}
	if len(keys) > maxBatchLen {
		return fmt.Errorf("kvstore: MultiPut batch %d exceeds %d keys", len(keys), maxBatchLen)
	}
	h, g, start := cl.opStart(opMultiPut)
	err := cl.multiPutRaw(keys, vals)
	if h != nil {
		opDone(h, g, start)
	}
	return err
}

func (cl *ClientV2) multiPutRaw(keys []string, vals [][]byte) error {
	p, err := cl.conn()
	if err != nil {
		return err
	}
	c := getCall(opMultiPut)
	c.keys, c.vals = keys, vals
	if err := p.roundTrip(c); err != nil {
		// Drop, don't recycle: the writer may still hold the call.
		return err
	}
	statuses := c.statuses
	status := c.status
	putCall(c)
	if status != statusOK {
		return fmt.Errorf("kvstore: server error on MultiPut(%d keys)", len(keys))
	}
	var firstErr error
	for i, st := range statuses {
		if st == statusOK {
			continue
		}
		if st == statusTooLarge {
			if ins := cl.ins.Load(); ins != nil {
				ins.TooLarge.Inc()
			}
		}
		if firstErr == nil {
			firstErr = putStatusErr(st, keys[i])
		}
	}
	return firstErr
}
