package sampler

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func testDataset(t testing.TB, n int) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{
		Name: "t", NumSamples: n, MeanSize: 1024, SigmaLog: 0.3, Classes: 4, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewValidation(t *testing.T) {
	ds := testDataset(t, 100)
	if _, err := New(nil, Config{WorldSize: 1, BatchSize: 1}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := New(ds, Config{WorldSize: 0, BatchSize: 1}); err == nil {
		t.Error("zero world accepted")
	}
	if _, err := New(ds, Config{WorldSize: 1, BatchSize: 0}); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := New(ds, Config{WorldSize: 64, BatchSize: 8}); err == nil {
		t.Error("dataset smaller than one global batch accepted")
	}
}

func TestIterationsPerEpoch(t *testing.T) {
	ds := testDataset(t, 1000)
	s, err := New(ds, Config{WorldSize: 4, BatchSize: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// floor(1000 / (32*4)) = 7
	if got := s.IterationsPerEpoch(); got != 7 {
		t.Fatalf("I = %d, want 7", got)
	}
	if got := s.SamplesPerEpoch(); got != 7*32*4 {
		t.Fatalf("SamplesPerEpoch = %d, want %d", got, 7*32*4)
	}
}

func TestEpochPermIsPermutation(t *testing.T) {
	ds := testDataset(t, 500)
	s, _ := New(ds, Config{WorldSize: 2, BatchSize: 10, Seed: 3})
	for _, epoch := range []int{0, 1, 7} {
		perm := s.EpochPerm(epoch)
		seen := make([]bool, 500)
		for _, id := range perm {
			if seen[id] {
				t.Fatalf("epoch %d: duplicate id %d", epoch, id)
			}
			seen[id] = true
		}
	}
}

func TestEpochPermsDiffer(t *testing.T) {
	ds := testDataset(t, 500)
	s, _ := New(ds, Config{WorldSize: 2, BatchSize: 10, Seed: 3})
	a := s.EpochPerm(0)
	b := s.EpochPerm(1)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if float64(same)/float64(len(a)) > 0.05 {
		t.Fatalf("epochs 0 and 1 share %d/%d positions", same, len(a))
	}
}

func TestScheduleDeterministicAcrossInstances(t *testing.T) {
	ds := testDataset(t, 400)
	cfg := Config{WorldSize: 4, BatchSize: 8, Seed: 99}
	s1, _ := New(ds, cfg)
	s2, _ := New(ds, cfg)
	for epoch := 0; epoch < 3; epoch++ {
		for iter := 0; iter < s1.IterationsPerEpoch(); iter++ {
			for rank := 0; rank < 4; rank++ {
				b1 := s1.Batch(nil, epoch, iter, rank)
				b2 := s2.Batch(nil, epoch, iter, rank)
				for k := range b1 {
					if b1[k] != b2[k] {
						t.Fatalf("batch(%d,%d,%d) differs at %d", epoch, iter, rank, k)
					}
				}
			}
		}
	}
}

func TestBatchesPartitionEpoch(t *testing.T) {
	// Within an epoch, every consumed sample appears exactly once across
	// all (iteration, rank) batches — data parallelism processes disjoint
	// mini-batches.
	ds := testDataset(t, 333)
	s, _ := New(ds, Config{WorldSize: 3, BatchSize: 11, Seed: 5})
	counts := map[dataset.SampleID]int{}
	for iter := 0; iter < s.IterationsPerEpoch(); iter++ {
		for rank := 0; rank < 3; rank++ {
			for _, id := range s.Batch(nil, 2, iter, rank) {
				counts[id]++
			}
		}
	}
	if len(counts) != s.SamplesPerEpoch() {
		t.Fatalf("distinct samples = %d, want %d", len(counts), s.SamplesPerEpoch())
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("sample %d consumed %d times in one epoch", id, c)
		}
	}
}

func TestBatchPanicsOutOfRange(t *testing.T) {
	ds := testDataset(t, 100)
	s, _ := New(ds, Config{WorldSize: 2, BatchSize: 5, Seed: 1})
	for _, fn := range []func(){
		func() { s.Batch(nil, 0, s.IterationsPerEpoch(), 0) },
		func() { s.Batch(nil, 0, -1, 0) },
		func() { s.Batch(nil, 0, 0, 2) },
		func() { s.Batch(nil, 0, 0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range Batch did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestNodeBatchConcatenatesGPUs(t *testing.T) {
	ds := testDataset(t, 256)
	s, _ := New(ds, Config{WorldSize: 4, BatchSize: 4, Seed: 7})
	nb := s.NodeBatch(nil, 0, 0, 1, 2) // node 1 of 2, gpusPerNode=2 -> ranks 2,3
	want := append(s.Batch(nil, 0, 0, 2), s.Batch(nil, 0, 0, 3)...)
	if len(nb) != len(want) {
		t.Fatalf("NodeBatch len %d, want %d", len(nb), len(want))
	}
	for i := range nb {
		if nb[i] != want[i] {
			t.Fatalf("NodeBatch[%d] = %d, want %d", i, nb[i], want[i])
		}
	}
}

func TestBatchBytesMatchesSum(t *testing.T) {
	ds := testDataset(t, 200)
	s, _ := New(ds, Config{WorldSize: 2, BatchSize: 8, Seed: 13})
	var want int64
	for _, id := range s.Batch(nil, 1, 3, 1) {
		want += ds.Size(id)
	}
	if got := s.BatchBytes(1, 3, 1); got != want {
		t.Fatalf("BatchBytes = %d, want %d", got, want)
	}
}

func TestPermCacheRevisit(t *testing.T) {
	ds := testDataset(t, 150)
	s, _ := New(ds, Config{WorldSize: 1, BatchSize: 10, Seed: 17})
	a0 := s.EpochPerm(0)
	_ = s.EpochPerm(1)
	_ = s.EpochPerm(2) // evicts epoch 0 from the 2-slot cache
	b0 := s.EpochPerm(0)
	for i := range a0 {
		if a0[i] != b0[i] {
			t.Fatal("re-generated epoch perm differs from original")
		}
	}
}

func TestSchedulePropertyPartition(t *testing.T) {
	f := func(seed uint64, worldRaw, batchRaw uint8) bool {
		world := int(worldRaw%4) + 1
		batch := int(batchRaw%8) + 1
		ds, err := dataset.Generate(dataset.Spec{
			Name: "q", NumSamples: 200, MeanSize: 100, Classes: 1, Seed: seed,
		})
		if err != nil {
			return false
		}
		s, err := New(ds, Config{WorldSize: world, BatchSize: batch, Seed: seed})
		if err != nil {
			return false
		}
		seen := map[dataset.SampleID]bool{}
		for iter := 0; iter < s.IterationsPerEpoch(); iter++ {
			for rank := 0; rank < world; rank++ {
				for _, id := range s.Batch(nil, 0, iter, rank) {
					if seen[id] {
						return false
					}
					seen[id] = true
				}
			}
		}
		return len(seen) == s.SamplesPerEpoch()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
