package datafile

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

// FuzzOpen feeds arbitrary bytes to the file parser: Open must never
// panic and must reject anything that is not a well-formed file (or
// produce a reader whose reads are themselves safe).
func FuzzOpen(f *testing.F) {
	// Seed corpus: a real file, plus truncations and header mutations.
	ds, err := dataset.Generate(dataset.Spec{
		Name: "fz", NumSamples: 5, MeanSize: 256, Classes: 1, Seed: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	good := filepath.Join(dir, "good")
	if err := Write(good, ds, 1); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:10])
	f.Add(data[:headerSize])
	f.Add([]byte(Magic))
	corrupt := append([]byte(nil), data...)
	corrupt[9] = 0xFF // absurd sample count
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, blob []byte) {
		path := filepath.Join(t.TempDir(), "fuzz")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Skip()
		}
		r, err := Open(path, true)
		if err != nil {
			return
		}
		defer r.Close()
		// Any reader that Open accepted must answer reads without
		// panicking; errors are fine.
		for i := 0; i < r.Len() && i < 16; i++ {
			_, _ = r.Read(dataset.SampleID(i))
		}
	})
}
