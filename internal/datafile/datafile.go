// Package datafile defines the packed on-disk dataset format the PFS
// store can serve real bytes from: one data file holding all sample
// payloads back to back, fronted by an index of (offset, length, checksum)
// records — the shape of the RecordIO/tar-style shards ImageNet is
// actually stored in on Lustre ("the training datasets are stored on a
// Lustre parallel file system mount point", Section 5.1).
//
// Layout (all integers little-endian):
//
//	header : magic "LOBSTR01" (8) | sampleCount u64 | seed u64
//	index  : sampleCount x { offset u64 | length u32 | crc32 u32 }
//	data   : concatenated payloads
//
// The file is self-verifying: every read can be checked against its CRC,
// and the whole file against the dataset generator.
package datafile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/dataset"
)

// Magic identifies the format (and its version).
const Magic = "LOBSTR01"

const headerSize = 8 + 8 + 8
const indexEntrySize = 8 + 4 + 4

// Write packs the dataset's payloads into path. Payloads are generated
// deterministically from (seed, id), so the file is reproducible
// bit-for-bit.
func Write(path string, ds *dataset.Dataset, seed uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("datafile: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)

	n := ds.Len()
	// Header.
	if _, err := w.WriteString(Magic); err != nil {
		return err
	}
	// bufio.Writer errors are sticky: later Writes are no-ops after a
	// failure and the Flush below surfaces the first error.
	put := func(b []byte) { _, _ = w.Write(b) }
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(n))
	put(u64[:])
	binary.LittleEndian.PutUint64(u64[:], seed)
	put(u64[:])

	// Index: offsets are relative to the start of the data section.
	offset := uint64(0)
	for i := 0; i < n; i++ {
		id := dataset.SampleID(i)
		size := uint64(ds.Size(id))
		payload := ds.Payload(id)
		binary.LittleEndian.PutUint64(u64[:], offset)
		put(u64[:])
		var u32 [4]byte
		binary.LittleEndian.PutUint32(u32[:], uint32(size))
		put(u32[:])
		binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(payload))
		put(u32[:])
		offset += size
	}
	// Data.
	for i := 0; i < n; i++ {
		if _, err := w.Write(ds.Payload(dataset.SampleID(i))); err != nil {
			return fmt.Errorf("datafile: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("datafile: %w", err)
	}
	return f.Sync()
}

// indexEntry is one sample's location.
type indexEntry struct {
	offset uint64
	length uint32
	crc    uint32
}

// Reader serves random sample reads from a packed file. Safe for
// concurrent use: reads go through ReadAt.
type Reader struct {
	f        *os.File
	index    []indexEntry
	dataOff  int64
	seed     uint64
	verified bool // verify CRC on every read
}

// Open loads the index (16 bytes per sample) into memory and leaves
// payload reads to positional I/O against the file, so concurrent readers
// share one descriptor without seek contention.
func Open(path string, verify bool) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("datafile: %w", err)
	}
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		_ = f.Close() // read-only descriptor; the read error is what matters
		return nil, fmt.Errorf("datafile: header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		_ = f.Close()
		return nil, fmt.Errorf("datafile: bad magic %q", hdr[:8])
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	seed := binary.LittleEndian.Uint64(hdr[16:24])
	if count > 1<<31 {
		_ = f.Close()
		return nil, fmt.Errorf("datafile: implausible sample count %d", count)
	}
	r := &Reader{
		f:        f,
		index:    make([]indexEntry, count),
		dataOff:  int64(headerSize) + int64(count)*indexEntrySize,
		seed:     seed,
		verified: verify,
	}
	buf := bufio.NewReaderSize(f, 1<<20)
	entry := make([]byte, indexEntrySize)
	for i := range r.index {
		if _, err := io.ReadFull(buf, entry); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("datafile: index: %w", err)
		}
		r.index[i] = indexEntry{
			offset: binary.LittleEndian.Uint64(entry[0:8]),
			length: binary.LittleEndian.Uint32(entry[8:12]),
			crc:    binary.LittleEndian.Uint32(entry[12:16]),
		}
	}
	return r, nil
}

// Len returns the sample count.
func (r *Reader) Len() int { return len(r.index) }

// Seed returns the generation seed recorded in the header.
func (r *Reader) Seed() uint64 { return r.seed }

// Size returns sample id's payload length.
func (r *Reader) Size(id dataset.SampleID) (int64, error) {
	if int(id) < 0 || int(id) >= len(r.index) {
		return 0, fmt.Errorf("datafile: sample %d out of range", id)
	}
	return int64(r.index[id].length), nil
}

// Read returns sample id's payload, verifying its CRC when the reader was
// opened with verification.
func (r *Reader) Read(id dataset.SampleID) ([]byte, error) {
	if int(id) < 0 || int(id) >= len(r.index) {
		return nil, fmt.Errorf("datafile: sample %d out of range", id)
	}
	e := r.index[id]
	buf := make([]byte, e.length)
	if _, err := r.f.ReadAt(buf, r.dataOff+int64(e.offset)); err != nil {
		return nil, fmt.Errorf("datafile: read sample %d: %w", id, err)
	}
	if r.verified {
		if got := crc32.ChecksumIEEE(buf); got != e.crc {
			return nil, fmt.Errorf("datafile: sample %d corrupt (crc %08x, want %08x)", id, got, e.crc)
		}
	}
	return buf, nil
}

// Close releases the file.
func (r *Reader) Close() error { return r.f.Close() }

// Verify checks every record's CRC (a full-file fsck).
func (r *Reader) Verify() error {
	for i := range r.index {
		if _, err := r.Read(dataset.SampleID(i)); err != nil {
			return err
		}
	}
	return nil
}
