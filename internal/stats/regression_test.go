package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	f, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-9 || math.Abs(f.Intercept-1) > 1e-9 {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", f)
	}
	if math.Abs(f.R2-1) > 1e-9 {
		t.Fatalf("R2 = %g, want 1", f.R2)
	}
	if got := f.Eval(10); math.Abs(got-21) > 1e-9 {
		t.Fatalf("Eval(10) = %g, want 21", got)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestFitLinearNoisy(t *testing.T) {
	r := NewRNG(99)
	var x, y []float64
	for i := 0; i < 500; i++ {
		xi := float64(i) / 10
		x = append(x, xi)
		y = append(y, 4+3*xi+r.NormFloat64()*0.1)
	}
	f, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-3) > 0.02 || math.Abs(f.Intercept-4) > 0.1 {
		t.Fatalf("noisy fit = %+v, want slope~3 intercept~4", f)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2 = %g, want > 0.99", f.R2)
	}
}

func TestPiecewiseLinearEval(t *testing.T) {
	p, err := NewPiecewiseLinear([]float64{0, 1, 2}, []float64{0, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{-1, 0}, // flat extrapolation left
		{0, 0},
		{0.5, 5}, // interpolation
		{1, 10},
		{1.5, 10},
		{2, 10},
		{5, 10}, // flat extrapolation right
	}
	for _, c := range cases {
		if got := p.Eval(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestPiecewiseLinearValidation(t *testing.T) {
	if _, err := NewPiecewiseLinear([]float64{0}, []float64{0}); err == nil {
		t.Error("single knot accepted")
	}
	if _, err := NewPiecewiseLinear([]float64{0, 0}, []float64{0, 1}); err == nil {
		t.Error("duplicate knot accepted")
	}
	if _, err := NewPiecewiseLinear([]float64{0, 1}, []float64{0}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFitPiecewiseLinearRecovesShape(t *testing.T) {
	// Saturating curve: rises to x=6, then flat — the Observation 3 shape.
	truth := func(x float64) float64 {
		if x < 6 {
			return x * 100
		}
		return 600
	}
	var xs, ys []float64
	for x := 1.0; x <= 16; x++ {
		for rep := 0; rep < 3; rep++ {
			xs = append(xs, x)
			ys = append(ys, truth(x))
		}
	}
	p, err := FitPiecewiseLinear(xs, ys, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted curve should rise in the early region and be flat late.
	if p.Eval(2) >= p.Eval(5) {
		t.Errorf("fitted curve not rising: f(2)=%g f(5)=%g", p.Eval(2), p.Eval(5))
	}
	if math.Abs(p.Eval(10)-p.Eval(15)) > 30 {
		t.Errorf("fitted curve not flat in saturated region: f(10)=%g f(15)=%g", p.Eval(10), p.Eval(15))
	}
	bestX, _ := p.ArgMax(1, 16)
	if bestX < 5 {
		t.Errorf("ArgMax = %g, want >= 5 (peak region)", bestX)
	}
}

func TestFitPiecewiseLinearDuplicatesAveraged(t *testing.T) {
	xs := []float64{1, 1, 2, 2}
	ys := []float64{0, 10, 20, 40}
	p, err := FitPiecewiseLinear(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Eval(1); math.Abs(got-5) > 1e-9 {
		t.Errorf("Eval(1) = %g, want 5 (average of duplicates)", got)
	}
	if got := p.Eval(2); math.Abs(got-30) > 1e-9 {
		t.Errorf("Eval(2) = %g, want 30", got)
	}
}

func TestPiecewisePropertyBounded(t *testing.T) {
	// Evaluations must stay within [min(ys), max(ys)] — linear
	// interpolation cannot overshoot its knots.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := r.Intn(8) + 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		x := r.Float64()
		minY, maxY := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			x += r.Float64() + 0.01
			xs[i] = x
			ys[i] = r.Float64() * 100
			if ys[i] < minY {
				minY = ys[i]
			}
			if ys[i] > maxY {
				maxY = ys[i]
			}
		}
		p, err := NewPiecewiseLinear(xs, ys)
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			v := p.Eval(r.Float64()*20 - 5)
			if v < minY-1e-9 || v > maxY+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
