package lint

import (
	"go/ast"
	"go/types"
)

// Errcheck flags call statements that silently drop an error return.
// A dropped error in the loading path turns a storage failure into a
// corrupt batch several stages downstream; every error must be
// handled, explicitly assigned to _, or allowlisted with a reason.
//
// Pragmatic exemptions, so the check stays signal:
//   - fmt.Print*/Println/Printf, and fmt.Fprint* writing to
//     os.Stdout/os.Stderr, a strings.Builder, or a bytes.Buffer
//     (cannot fail meaningfully);
//   - methods on strings.Builder / bytes.Buffer (documented nil error);
//   - deferred Close() calls (the conventional cleanup shape).
var Errcheck = &Analyzer{
	ID:  idErrcheck,
	Doc: "error-returning calls must not be used as bare statements; handle, assign to _, or allowlist",
	Run: runErrcheck,
}

func runErrcheck(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if f, bad := droppedError(p, call, false); bad {
						out = append(out, f)
					}
				}
			case *ast.GoStmt:
				if f, bad := droppedError(p, n.Call, false); bad {
					out = append(out, f)
				}
			case *ast.DeferStmt:
				if f, bad := droppedError(p, n.Call, true); bad {
					out = append(out, f)
				}
			}
			return true
		})
	}
	return out
}

func droppedError(p *Package, call *ast.CallExpr, deferred bool) (Finding, bool) {
	if !returnsError(p.Info, call) || exemptCall(p, call, deferred) {
		return Finding{}, false
	}
	return p.finding(idErrcheck, call,
		"%s returns an error that is dropped; handle it or assign to _ with a reason", calleeName(p, call)), true
}

// returnsError reports whether the call's only or last result is an
// error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func exemptCall(p *Package, call *ast.CallExpr, deferred bool) bool {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	if deferred && name == "Close" {
		return true
	}
	if pkg == "fmt" {
		switch name {
		case "Print", "Println", "Printf":
			return true
		case "Fprint", "Fprintln", "Fprintf":
			return len(call.Args) > 0 && unfailingWriter(p, call.Args[0])
		}
	}
	if pkg == "strings" || pkg == "bytes" {
		// strings.Builder and bytes.Buffer Write*/ReadFrom document a
		// nil (or panic-only) error.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			switch typeString(deref(sig.Recv().Type())) {
			case "strings.Builder", "bytes.Buffer":
				return true
			}
		}
	}
	return false
}

// unfailingWriter reports whether expr is a writer whose Write cannot
// fail in practice: os.Stdout, os.Stderr, a strings.Builder, or a
// bytes.Buffer.
func unfailingWriter(p *Package, expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	if sel, ok := expr.(*ast.SelectorExpr); ok {
		if obj, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return true
		}
	}
	if t := p.Info.TypeOf(expr); t != nil {
		switch typeString(deref(t)) {
		case "strings.Builder", "bytes.Buffer":
			return true
		}
	}
	return false
}

func calleeName(p *Package, call *ast.CallExpr) string {
	if fn := calleeFunc(p.Info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "(" + typeString(sig.Recv().Type()) + ")." + fn.Name()
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return types.ExprString(call.Fun)
}
