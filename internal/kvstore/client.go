package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Client speaks the legacy v1 protocol to one shard: one blocking
// request per round trip, multiplexed over a small connection pool.
// Safe for concurrent use. New code should prefer ClientV2, which
// pipelines many ops per connection; Client remains for compatibility
// with v1-only peers and as the benchmark baseline.
type Client struct {
	addr string
	pool chan *clientConn // nil slot = connection lost, redial on demand
	mu   sync.Mutex
	all  []*clientConn
}

type clientConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// NewClient connects to a shard with the given pool size.
func NewClient(addr string, poolSize int) (*Client, error) {
	if poolSize < 1 {
		poolSize = 1
	}
	cl := &Client{addr: addr, pool: make(chan *clientConn, poolSize)}
	for i := 0; i < poolSize; i++ {
		cc, err := cl.dial()
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.pool <- cc
	}
	return cl, nil
}

func (cl *Client) dial() (*clientConn, error) {
	c, err := net.Dial("tcp", cl.addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial %s: %w", cl.addr, err)
	}
	cc := &clientConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
	cl.mu.Lock()
	cl.all = append(cl.all, cc)
	cl.mu.Unlock()
	return cc, nil
}

// drop closes a broken connection and forgets it, so Close never
// touches it again and the tracking list cannot accumulate corpses.
func (cl *Client) drop(cc *clientConn) {
	_ = cc.c.Close() // already broken; the round-trip error is what matters
	cl.mu.Lock()
	for i, other := range cl.all {
		if other == cc {
			cl.all = append(cl.all[:i], cl.all[i+1:]...)
			break
		}
	}
	cl.mu.Unlock()
}

// Close closes all pooled connections.
func (cl *Client) Close() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, cc := range cl.all {
		_ = cc.c.Close() // best-effort teardown of pooled connections
	}
	cl.all = nil
}

// roundTrip runs one request. A broken connection is replaced once; if
// the redial fails too, the slot is parked as nil (never a dead
// connection) and the next caller redials it.
func (cl *Client) roundTrip(op byte, key string, val []byte) (byte, []byte, error) {
	cc := <-cl.pool
	if cc == nil {
		var err error
		if cc, err = cl.dial(); err != nil {
			cl.pool <- nil
			return 0, nil, err
		}
	}
	status, out, err := cc.do(op, key, val)
	if err == nil {
		cl.pool <- cc
		return status, out, nil
	}
	cl.drop(cc)
	cc2, derr := cl.dial()
	if derr != nil {
		cl.pool <- nil
		return 0, nil, err // the original round-trip error
	}
	status, out, err = cc2.do(op, key, val)
	if err != nil {
		cl.drop(cc2)
		cl.pool <- nil
		return 0, nil, err
	}
	cl.pool <- cc2
	return status, out, nil
}

func (cc *clientConn) do(op byte, key string, val []byte) (byte, []byte, error) {
	// bufio.Writer errors are sticky; the Flush below surfaces the first.
	_ = cc.w.WriteByte(op)
	writeU32(cc.w, uint32(len(key)))
	_, _ = cc.w.WriteString(key)
	writeU32(cc.w, uint32(len(val)))
	_, _ = cc.w.Write(val)
	if err := cc.w.Flush(); err != nil {
		return 0, nil, err
	}
	status, err := cc.r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := readLen(cc.r, maxValLen)
	if err != nil {
		return 0, nil, err
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(cc.r, out); err != nil {
		return 0, nil, err
	}
	return status, out, nil
}

// Get fetches a value; found=false when the key is absent.
func (cl *Client) Get(key string) (val []byte, found bool, err error) {
	status, out, err := cl.roundTrip(opGet, key, nil)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case statusOK:
		return out, true, nil
	case statusNotFound:
		return nil, false, nil
	case statusRetryLater:
		return nil, false, fmt.Errorf("kvstore: Get(%q): %w", key, ErrRetryLater)
	default:
		return nil, false, fmt.Errorf("kvstore: server error on Get(%q)", key)
	}
}

// Put stores a value. Values the shard can never admit are reported as
// ErrTooLarge.
func (cl *Client) Put(key string, val []byte) error {
	status, _, err := cl.roundTrip(opPut, key, val)
	if err != nil {
		return err
	}
	return putStatusErr(status, key)
}

// putStatusErr maps a Put response status to the client-facing error.
func putStatusErr(status byte, key string) error {
	switch status {
	case statusOK:
		return nil
	case statusTooLarge:
		return fmt.Errorf("kvstore: Put(%q): %w", key, ErrTooLarge)
	case statusRetryLater:
		return fmt.Errorf("kvstore: Put(%q): %w", key, ErrRetryLater)
	default:
		return fmt.Errorf("kvstore: server error on Put(%q)", key)
	}
}

// Delete removes a key (no-op when absent).
func (cl *Client) Delete(key string) error {
	status, _, err := cl.roundTrip(opDelete, key, nil)
	if err != nil {
		return err
	}
	if status != statusOK {
		return fmt.Errorf("kvstore: server error on Delete(%q)", key)
	}
	return nil
}

// Stats fetches the shard's counters.
func (cl *Client) Stats() (Stats, error) {
	status, out, err := cl.roundTrip(opStats, "", nil)
	if err != nil {
		return Stats{}, err
	}
	if status != statusOK || len(out) != statsWireLen {
		return Stats{}, fmt.Errorf("kvstore: bad stats response")
	}
	return decodeStats(out), nil
}

func decodeStats(out []byte) Stats {
	return Stats{
		Items:        int(binary.BigEndian.Uint64(out[0:])),
		UsedBytes:    int64(binary.BigEndian.Uint64(out[8:])),
		Hits:         binary.BigEndian.Uint64(out[16:]),
		Misses:       binary.BigEndian.Uint64(out[24:]),
		Evictions:    binary.BigEndian.Uint64(out[32:]),
		TooLarge:     binary.BigEndian.Uint64(out[40:]),
		ShedDeadline: binary.BigEndian.Uint64(out[48:]),
		ShedQuota:    binary.BigEndian.Uint64(out[56:]),
		ShedQueue:    binary.BigEndian.Uint64(out[64:]),
	}
}

// MultiGet fetches several keys with one round trip per key (the v1
// protocol has no batch frames). vals[i] is nil when keys[i] is absent
// and non-nil (possibly empty) when present. Implements the same
// contract as ClientV2.MultiGet so a Cluster can run on either.
func (cl *Client) MultiGet(keys []string) ([][]byte, error) {
	vals := make([][]byte, len(keys))
	for i, key := range keys {
		v, found, err := cl.Get(key)
		if err != nil {
			return nil, err
		}
		if found {
			if v == nil {
				v = []byte{}
			}
			vals[i] = v
		}
	}
	return vals, nil
}

// MultiPut stores several key/value pairs, one round trip each (see
// MultiGet). Storage is best-effort: on a per-key refusal the remaining
// pairs are still written and the first error is returned.
func (cl *Client) MultiPut(keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("kvstore: MultiPut got %d keys, %d values", len(keys), len(vals))
	}
	var first error
	for i, key := range keys {
		if err := cl.Put(key, vals[i]); err != nil {
			if first == nil {
				first = err
			}
		}
	}
	return first
}
